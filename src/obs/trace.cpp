#include "obs/trace.hpp"

#ifndef ONESA_TRACING_DISABLED

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>

namespace onesa::obs {

namespace {

/// Dense per-thread track id for the Chrome "tid" field: stable for the
/// thread's lifetime, small enough that Perfetto's track list stays
/// readable.
std::uint32_t thread_track_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// splitmix64 finalizer: decorrelates sequential request ids so a rate-r
/// sample takes an unbiased r fraction of any id range.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceCollector& TraceCollector::global() {
  static auto* collector = new TraceCollector();  // intentionally leaked
  return *collector;
}

void TraceCollector::start(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  const double scaled = rate * 4294967296.0;  // of 2^32
  sample_threshold_.store(scaled >= 4294967295.0
                              ? 0xffffffffu
                              : static_cast<std::uint32_t>(scaled),
                          std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::stop() { enabled_.store(false, std::memory_order_relaxed); }

bool TraceCollector::sample(std::uint64_t id) const {
  const std::uint32_t threshold = sample_threshold_.load(std::memory_order_relaxed);
  if (threshold == 0xffffffffu) return true;
  return static_cast<std::uint32_t>(mix(id)) < threshold;
}

TraceCollector::Buffer& TraceCollector::local_buffer() {
  // The thread_local shared_ptr keeps the buffer alive while the thread
  // runs; the registered copy keeps its events reachable after the thread
  // exits (worker threads die before the demo writes its trace).
  thread_local std::shared_ptr<Buffer> tls;
  if (tls == nullptr) {
    tls = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffers_.push_back(tls);
  }
  return *tls;
}

void TraceCollector::record(TraceEvent event) {
  if (!enabled()) return;
  event.tid = thread_track_id();
  Buffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  return out;
}

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\": [";
  const char* sep = "";
  for (const TraceEvent& ev : events) {
    os << sep << "\n  {\"ph\": \"" << static_cast<char>(ev.phase) << "\", \"name\": \""
       << ev.name << "\", \"cat\": \"" << ev.cat << "\", \"pid\": 1, \"tid\": " << ev.tid
       << ", \"ts\": " << ev.ts_us;
    if (ev.phase == TraceEvent::Phase::kComplete) {
      os << ", \"dur\": " << ev.dur_us;
    } else {
      // Async events correlate by (cat, id); Chrome wants the id as a
      // string.
      os << ", \"id\": \"" << ev.id << "\"";
    }
    if (!ev.args.empty()) os << ", \"args\": {" << ev.args << "}";
    os << "}";
    sep = ",";
  }
  os << "\n]}\n";
}

bool TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  write_chrome_trace(file);
  return static_cast<bool>(file);
}

void trace_async_begin(const char* name, const char* cat, std::uint64_t id,
                       std::int64_t ts_us, std::string args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kAsyncBegin;
  ev.name = name;
  ev.cat = cat;
  ev.id = id;
  ev.ts_us = ts_us;
  ev.args = std::move(args);
  TraceCollector::global().record(std::move(ev));
}

void trace_async_end(const char* name, const char* cat, std::uint64_t id,
                     std::int64_t ts_us, std::string args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kAsyncEnd;
  ev.name = name;
  ev.cat = cat;
  ev.id = id;
  ev.ts_us = ts_us;
  ev.args = std::move(args);
  TraceCollector::global().record(std::move(ev));
}

void trace_complete(const char* name, const char* cat, std::int64_t ts_us,
                    std::int64_t dur_us, std::string args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args = std::move(args);
  TraceCollector::global().record(std::move(ev));
}

}  // namespace onesa::obs

#endif  // ONESA_TRACING_DISABLED
