#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace onesa::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// `name` with a `quantile="q"` label spliced into its (possibly empty)
/// label set: `lat{class="bulk"}` -> `lat{class="bulk",quantile="0.5"}`.
std::string with_quantile(const std::string& name, const char* q) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return name + "{quantile=\"" + q + "\"}";
  std::string out = name.substr(0, name.size() - 1);  // drop trailing '}'
  out += ",quantile=\"";
  out += q;
  out += "\"}";
  return out;
}

/// Base metric name without the label set (for # TYPE lines and the
/// _count/_sum suffixes, which go before the labels).
std::string base_name(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

std::string label_set(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? std::string() : name.substr(brace);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

/// Doubles formatted for exposition: plain, enough digits to round-trip
/// percentile comparisons in tests, no locale surprises.
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

void relaxed_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void relaxed_min_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void relaxed_max_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool on) { g_metrics_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN -> underflow
  int exp = 0;
  const double mant = std::frexp(value, &exp);  // value = mant * 2^exp, mant in [0.5, 1)
  if (exp < kMinExp) return 0;
  if (exp >= kMaxExp) return kBuckets - 1;
  // mant - 0.5 in [0, 0.5) sliced into kSubBuckets equal pieces.
  auto sub = static_cast<std::size_t>((mant - 0.5) * 2.0 * static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lo(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBuckets - 1) return std::ldexp(0.5, kMaxExp);
  const std::size_t r = index - 1;
  const int exp = kMinExp + static_cast<int>(r / kSubBuckets);
  const std::size_t sub = r % kSubBuckets;
  return std::ldexp(0.5 + 0.5 * static_cast<double>(sub) / static_cast<double>(kSubBuckets),
                    exp);
}

double Histogram::bucket_hi(std::size_t index) {
  if (index == 0) return std::ldexp(0.5, kMinExp);
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_lo(index + 1);
}

std::array<std::unique_ptr<Histogram::Shard>, Histogram::kShards> Histogram::make_shards() {
  std::array<std::unique_ptr<Shard>, kShards> shards;
  for (auto& shard : shards) shard = std::make_unique<Shard>();
  return shards;
}

void Histogram::record(double value) {
  if (!metrics_enabled()) return;
  Shard& shard = *shards_[detail::thread_slot() % kShards];
  shard.counts[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t before = shard.count.fetch_add(1, std::memory_order_relaxed);
  relaxed_add_double(shard.sum, value);
  if (before == 0) {
    // First sample of this shard seeds min/max (0.0 defaults are not valid
    // extrema); racing recorders then CAS them toward the true extremes.
    double expected = 0.0;
    shard.min.compare_exchange_strong(expected, value, std::memory_order_relaxed);
    expected = 0.0;
    shard.max.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  relaxed_min_double(shard.min, value);
  relaxed_max_double(shard.max, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  bool first = true;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    const std::uint64_t n = shard.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.count += n;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const double lo = shard.min.load(std::memory_order_relaxed);
    const double hi = shard.max.load(std::memory_order_relaxed);
    snap.min = first ? lo : std::min(snap.min, lo);
    snap.max = first ? hi : std::max(snap.max, hi);
    first = false;
    for (std::size_t b = 0; b < kBuckets; ++b)
      snap.buckets[b] += shard.counts[b].load(std::memory_order_relaxed);
  }
  return snap;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->count.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    for (auto& b : shard.counts) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target rank in [1, count]; walk buckets until the cumulative count
  // covers it, then interpolate linearly inside the landing bucket.
  const double target = std::max(1.0, p / 100.0 * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const auto prev = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b == 0) return min;                      // underflow bucket: all <= min scale
    if (b == buckets.size() - 1) return max;     // overflow bucket
    const double lo = Histogram::bucket_lo(b);
    const double hi = Histogram::bucket_hi(b);
    const double frac = (target - prev) / static_cast<double>(buckets[b]);
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static auto* registry = new MetricsRegistry();  // intentionally leaked
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string last_type_line;
  auto type_line = [&](const std::string& name, const char* type) {
    const std::string line = "# TYPE " + base_name(name) + " " + type + "\n";
    if (line != last_type_line) {
      os << line;
      last_type_line = line;
    }
  };
  for (const auto& [name, counter] : counters_) {
    type_line(name, "counter");
    os << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    type_line(name, "gauge");
    os << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    type_line(name, "summary");
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}}) {
      os << with_quantile(name, label) << " " << fmt(snap.percentile(p)) << "\n";
    }
    os << base_name(name) << "_count" << label_set(name) << " " << snap.count << "\n";
    os << base_name(name) << "_sum" << label_set(name) << " " << fmt(snap.sum) << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, counter] : counters_) {
    os << sep << "\n    \"" << json_escape(name) << "\": " << counter->value();
    sep = ",";
  }
  os << "\n  },\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, gauge] : gauges_) {
    os << sep << "\n    \"" << json_escape(name) << "\": " << gauge->value();
    sep = ",";
  }
  os << "\n  },\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    os << sep << "\n    \"" << json_escape(name) << "\": {\"count\": " << snap.count
       << ", \"sum\": " << fmt(snap.sum) << ", \"mean\": " << fmt(snap.mean())
       << ", \"min\": " << fmt(snap.min) << ", \"max\": " << fmt(snap.max)
       << ", \"p50\": " << fmt(snap.percentile(50.0))
       << ", \"p90\": " << fmt(snap.percentile(90.0))
       << ", \"p99\": " << fmt(snap.percentile(99.0)) << "}";
    sep = ",";
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace onesa::obs
