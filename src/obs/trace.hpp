// Per-request trace spans: monotonic-clock timestamped events collected in
// per-thread buffers and exported as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Event model (see README "Observability" for the span taxonomy):
//  - A request's lifecycle is a set of ASYNC events (ph "b"/"e") sharing
//    cat="request" and id=<request id>: an outer "request" span opened at
//    submit and closed at completion (terminal args carry the outcome —
//    "ok", "shed" or "error"), with nested "queue_wait", "window_park" and
//    "service" spans reconstructed from the timestamps the serving layer
//    already records. Every sampled request reaches exactly one terminal
//    "e" event, whatever its fate — the CI trace checker enforces this.
//  - Worker-side execution is COMPLETE events (ph "X") on the worker's
//    thread track: "batch" (cat "batch") for a whole batch execution, and
//    "gemm"/"gemm_packed" (cat "kernel") from the kernel profiling hooks,
//    which nest inside the batch span on the same track.
//
// Cost model: tracing is OFF by default. The compile-time gate
// (-DONESA_TRACING_DISABLED, CMake option ONESA_TRACING=OFF) compiles every
// call site down to nothing. Compiled in but stopped, each site is one
// relaxed atomic load and a not-taken branch. Running, requests are sampled
// by a deterministic hash of the request id against the configured rate, so
// a 1% sample keeps 99% of requests on the stopped-cost path; sampled
// events append to a per-thread buffer under that buffer's (uncontended)
// mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace onesa::obs {

#ifdef ONESA_TRACING_DISABLED

/// Tracing compiled out: constant-false predicates let the optimizer drop
/// every guarded call site whole.
inline constexpr bool tracing_compiled() { return false; }
inline bool tracing_enabled() { return false; }
inline bool trace_sample(std::uint64_t) { return false; }
inline std::int64_t trace_now_us() { return 0; }
inline void trace_async_begin(const char*, const char*, std::uint64_t, std::int64_t,
                              std::string = {}) {}
inline void trace_async_end(const char*, const char*, std::uint64_t, std::int64_t,
                            std::string = {}) {}
inline void trace_complete(const char*, const char*, std::int64_t, std::int64_t,
                           std::string = {}) {}
inline void trace_start(double = 1.0) {}
inline void trace_stop() {}
inline void trace_clear() {}
inline bool trace_write_chrome(const std::string&) { return false; }
inline void trace_write_chrome(std::ostream&) {}

#else  // tracing compiled in

inline constexpr bool tracing_compiled() { return true; }

/// One trace event. `args` is a pre-rendered JSON object body (without the
/// braces), e.g. `"outcome":"ok","worker":2` — rendered by the emitter so
/// the collector stays format-agnostic and the hot path does one string
/// build only for sampled requests.
struct TraceEvent {
  enum class Phase : char {
    kAsyncBegin = 'b',
    kAsyncEnd = 'e',
    kComplete = 'X',
  };

  Phase phase = Phase::kComplete;
  const char* name = "";  // static strings only — span names are a fixed taxonomy
  const char* cat = "";
  std::uint64_t id = 0;    // async correlation id (the request id)
  std::int64_t ts_us = 0;  // steady-clock microseconds (trace_now_us epoch)
  std::int64_t dur_us = 0; // kComplete only
  std::uint32_t tid = 0;   // dense per-thread track id
  std::string args;        // JSON object body, may be empty
};

/// Process-wide trace collector. Threads append to their own registered
/// buffer; snapshot/export walks all buffers (including those of exited
/// threads — the collector keeps them alive).
class TraceCollector {
 public:
  static TraceCollector& global();

  /// Enable collection, sampling requests at `rate` in [0, 1] (1 = every
  /// request). Does not clear previously collected events.
  void start(double rate = 1.0);
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Deterministic sampling decision for a request id: stable across the
  /// request's lifetime and across runs.
  bool sample(std::uint64_t id) const;

  void record(TraceEvent event);
  void clear();

  /// All collected events, sorted by timestamp.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}). The file variant
  /// returns false (and writes nothing) if the path cannot be opened.
  void write_chrome_trace(std::ostream& os) const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Buffer {
    std::mutex mutex;  // uncontended: one writer (the owning thread) + snapshots
    std::vector<TraceEvent> events;
  };

  Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_threshold_{0};  // of 2^32
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// Cheap global predicate call sites guard on: one relaxed load.
inline bool tracing_enabled() { return TraceCollector::global().enabled(); }
inline bool trace_sample(std::uint64_t id) { return TraceCollector::global().sample(id); }

/// Microseconds on the same steady clock the serving layer stamps requests
/// with, so spans reconstructed from ServeClock time_points line up.
std::int64_t trace_now_us();

void trace_async_begin(const char* name, const char* cat, std::uint64_t id,
                       std::int64_t ts_us, std::string args = {});
void trace_async_end(const char* name, const char* cat, std::uint64_t id,
                     std::int64_t ts_us, std::string args = {});
void trace_complete(const char* name, const char* cat, std::int64_t ts_us,
                    std::int64_t dur_us, std::string args = {});

inline void trace_start(double rate = 1.0) { TraceCollector::global().start(rate); }
inline void trace_stop() { TraceCollector::global().stop(); }
inline void trace_clear() { TraceCollector::global().clear(); }
inline bool trace_write_chrome(const std::string& path) {
  return TraceCollector::global().write_chrome_trace(path);
}
inline void trace_write_chrome(std::ostream& os) {
  TraceCollector::global().write_chrome_trace(os);
}

#endif  // ONESA_TRACING_DISABLED

}  // namespace onesa::obs
