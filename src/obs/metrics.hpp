// Low-overhead metrics registry: lock-free counters and gauges plus
// log-linear histograms, all sharded to keep concurrent writers off each
// other's cache lines, with Prometheus-style text exposition and a JSON
// snapshot API.
//
// Design constraints (this layer instruments the serving hot path, so they
// are load-bearing):
//
//  - A metric update is a relaxed atomic RMW on a thread-local shard — no
//    mutex, no CAS retry loop for counters, no false sharing (shards are
//    cache-line aligned). Exact totals are still guaranteed: fetch_add
//    never loses an increment, snapshot readers just sum the shards.
//  - Updates first check one global enabled flag (relaxed load + branch),
//    so `set_metrics_enabled(false)` reduces every instrumented call site
//    to a predictable not-taken branch.
//  - Metric objects are created once (registry mutex, name lookup) and then
//    referenced by stable address forever: hot paths hold `Counter&` /
//    `Histogram&`, never a name. The registry never deletes a metric.
//
// Histograms are log-linear: each power-of-two octave of the value range is
// split into kSubBuckets equal-width linear buckets, giving a bounded
// relative error of 1/kSubBuckets (3.1% for 32 subbuckets) for any
// percentile, independent of the distribution — the standard HDR-histogram
// trick. Negative/zero values land in a dedicated underflow bucket.
//
// Label convention: a metric name may carry Prometheus labels inline, e.g.
//   serve_model_requests_total{model="mlp",version="2"}
// The registry treats the whole string as the identity; the Prometheus
// writer splices `quantile` labels into an existing label set correctly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace onesa::obs {

/// Global metrics switch. Defaults to enabled; when off, every update is a
/// relaxed load and a not-taken branch ("obs off" in the overhead bench).
bool metrics_enabled();
void set_metrics_enabled(bool on);

namespace detail {

/// Small dense per-thread slot used to pick a shard: threads get
/// round-robin slots on first use, so up to kMaxShards concurrent writers
/// touch distinct cache lines. (A hash of std::thread::id would cluster.)
std::size_t thread_slot();

inline constexpr std::size_t kMaxShards = 16;

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) GaugeShard {
  std::atomic<std::int64_t> value{0};
};

}  // namespace detail

/// Monotonically increasing counter. add() is wait-free; value() is exact
/// (every fetch_add lands in some shard, the read sums all shards).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shards_[detail::thread_slot() % detail::kMaxShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::CounterShard, detail::kMaxShards> shards_{};
};

/// Up/down gauge with delta semantics: several instances of a subsystem
/// (e.g. every RequestQueue) add/sub into one named gauge and the reading
/// is the correct aggregate. Sharded like Counter — the producer side
/// (queue push) and the consumer side (worker pop) of a gauge run on
/// different threads, and a single shared atomic would ping-pong its cache
/// line between them on every request.
class Gauge {
 public:
  void add(std::int64_t delta) {
    if (!metrics_enabled()) return;
    shards_[detail::thread_slot() % detail::kMaxShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) { add(-delta); }

  /// Overwrite the aggregate. Not linearizable against concurrent add():
  /// deltas in flight while set() walks the shards may survive it.
  void set(std::int64_t v) {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
    shards_[0].value.store(v, std::memory_order_relaxed);
  }

  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::GaugeShard, detail::kMaxShards> shards_{};
};

/// Read-only copy of a histogram's state, used for percentile queries and
/// exposition without holding writers up.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  // Histogram::kBuckets entries

  bool empty() const { return count == 0; }
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Percentile in [0, 100] with linear interpolation inside the landing
  /// bucket; relative error bounded by 1/kSubBuckets. Returns 0 when empty.
  double percentile(double p) const;
};

/// Log-linear histogram of positive doubles (latencies in ms, GFLOP/s,
/// batch fill ratios). record() is lock-free: bucket counts are relaxed
/// fetch_add on a per-thread shard; the running sum is a relaxed CAS loop
/// (the one non-wait-free piece, contended only within a shard).
class Histogram {
 public:
  // 32 linear subbuckets per power-of-two octave over [2^-32, 2^32), plus
  // one underflow and one overflow bucket. 3.1% worst-case relative error.
  static constexpr std::size_t kSubBits = 5;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  static constexpr int kMinExp = -31;  // frexp exponent of the smallest octave
  static constexpr int kMaxExp = 33;   // one past the largest octave
  static constexpr std::size_t kRangeBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;
  static constexpr std::size_t kBuckets = kRangeBuckets + 2;  // +underflow +overflow

  void record(double value);

  HistogramSnapshot snapshot() const;
  std::uint64_t count() const;
  void reset();

  /// Bucket index for a value (0 = underflow, kBuckets-1 = overflow) and
  /// the [lo, hi) value bounds of an index — exposed for tests.
  static std::size_t bucket_index(double value);
  static double bucket_lo(std::size_t index);
  static double bucket_hi(std::size_t index);

 private:
  static constexpr std::size_t kShards = 8;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // valid only when count > 0
    std::atomic<double> max{0.0};
  };

  // Heap-allocated: a Shard is ~16 KiB of buckets and histograms live in a
  // registry map node; keeping the hot arrays out of the node keeps metric
  // creation cheap and addresses stable.
  std::array<std::unique_ptr<Shard>, kShards> shards_ = make_shards();

  static std::array<std::unique_ptr<Shard>, kShards> make_shards();
};

/// Name -> metric registry. Creation/lookup takes a mutex; returned
/// references are stable for the life of the process (metrics are never
/// removed), so call sites resolve once and update lock-free after that.
class MetricsRegistry {
 public:
  /// Process-wide registry (heap-allocated, never destructed, so worker
  /// threads may update metrics during static teardown).
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Prometheus text exposition: counters and gauges as single samples,
  /// histograms as summaries (quantile labels + _count/_sum).
  void write_prometheus(std::ostream& os) const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, min, max, p50, p90, p99}}}.
  void write_json(std::ostream& os) const;

  /// Zero every registered metric (bench/test isolation between phases).
  /// Racing writers may land increments on either side of the reset; that
  /// is inherent to resetting live metrics and fine for its callers.
  void reset();

 private:
  mutable std::mutex mutex_;
  // std::map: node-stable, so metric references survive any later insert.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace onesa::obs
