// Readiness multiplexer behind the network front door: epoll(7) on Linux,
// with a portable poll(2) fallback that is always compiled (and selectable
// at runtime) so the fallback path is tested on every platform, not just
// exercised on the exotic ones.
//
// The interface is deliberately tiny — level-triggered readiness on a set of
// fds with per-fd read/write interest — because the server's event loop is
// single-threaded and owns every fd it registers. No thread-safety is
// provided or needed.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace onesa::net {

class Poller {
 public:
  enum class Backend {
    /// epoll on Linux, poll elsewhere.
    kDefault,
    /// Force the portable poll(2) implementation (tests, non-Linux).
    kPoll,
  };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Peer hangup or fd error — the caller should read to EOF / close.
    bool hangup = false;
  };

  explicit Poller(Backend backend = Backend::kDefault);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and fills `out` with ready fds.
  /// Returns the number of events. EINTR returns 0 (the caller's loop
  /// re-evaluates its timers and tries again).
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;  // -1 = poll fallback
  /// poll fallback state: fd -> interest (bit 0 read, bit 1 write).
  std::unordered_map<int, unsigned> interest_;
};

}  // namespace onesa::net
