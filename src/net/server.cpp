#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "serve/errors.hpp"

namespace onesa::net {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// net_* metrics, resolved once. Global across NetServer instances (like
/// every obs metric); the per-instance NetServerCounters snapshot is what
/// tests and the loadgen assert on.
struct NetMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& connections = reg.counter("net_connections_accepted_total");
  obs::Counter& frames = reg.counter("net_frames_total");
  obs::Counter& infers = reg.counter("net_infers_accepted_total");
  obs::Counter& replies = reg.counter("net_replies_sent_total");
  obs::Counter& protocol_errors = reg.counter("net_protocol_errors_total");
  obs::Counter& overloads = reg.counter("net_overload_replies_total");
  obs::Counter& error_replies = reg.counter("net_error_replies_total");
  obs::Counter& idle_evictions = reg.counter("net_idle_evictions_total");
  obs::Counter& slow_evictions = reg.counter("net_slow_client_evictions_total");
  obs::Counter& orphans = reg.counter("net_orphaned_replies_total");
  obs::Counter& draining_rejects = reg.counter("net_draining_rejects_total");
  obs::Counter& accept_pauses = reg.counter("net_accept_pauses_total");
  obs::Gauge& open_conns = reg.gauge("net_open_connections");
  obs::Gauge& inflight = reg.gauge("net_inflight_requests");
  static NetMetrics& get() {
    static NetMetrics m;
    return m;
  }
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ONESA_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl(O_NONBLOCK) failed: errno " << errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

/// Relaxed mirrors of NetServerCounters, owned by the server. Every bump
/// also lands in the global obs registry so /metrics exposes the same
/// numbers.
struct NetServer::AtomicCounters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> infers_accepted{0};
  std::atomic<std::uint64_t> replies_sent{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> overload_replies{0};
  std::atomic<std::uint64_t> error_replies{0};
  std::atomic<std::uint64_t> idle_evictions{0};
  std::atomic<std::uint64_t> slow_client_evictions{0};
  std::atomic<std::uint64_t> orphaned_replies{0};
  std::atomic<std::uint64_t> draining_rejects{0};
  std::atomic<std::uint64_t> accept_pauses{0};
};

/// One accepted connection. Owned by the event-loop thread exclusively;
/// completions reference it only by id through the bus.
struct NetServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;

  /// Unflushed reply bytes ([out_off, out.size()) is the live window).
  std::vector<unsigned char> out;
  std::size_t out_off = 0;
  bool want_write = false;
  /// Reply-then-close: flush what is queued, then close (protocol errors,
  /// HTTP responses).
  bool closing_after_flush = false;

  /// Dialect: the first byte of a connection picks binary frames ('O' of
  /// the magic) or plain HTTP ("GET /metrics").
  bool dialect_known = false;
  bool http = false;
  std::string http_buf;

  /// Infer requests accepted on this connection whose reply has not yet
  /// been queued (keeps idle eviction away from busy-but-quiet clients).
  std::size_t inflight = 0;

  Clock::time_point last_activity{};
  /// Slowloris watch: set when the peer is mid-frame (partial frame or
  /// partial HTTP request buffered), cleared when the frame completes.
  bool mid_frame = false;
  Clock::time_point frame_started{};
  /// Slow-reader watch: set when `out` becomes nonempty.
  Clock::time_point write_since{};

  explicit Conn(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

/// Hand-off channel from fleet worker threads (where completion hooks run)
/// to the event-loop thread (which owns every socket). shared_ptr-held by
/// every in-flight hook, so a straggler settling after the server died
/// posts into a closed bus instead of freed memory.
struct NetServer::CompletionBus {
  struct Item {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    bool ok = false;
    InferReply reply;  // when ok
    FrameType code = FrameType::kErrInternal;
    WireError err;  // when !ok
  };

  std::mutex mutex;
  bool open = true;
  int wake_fd = -1;  // write end of the server's self-pipe
  std::vector<Item> items;

  /// Completion-hook settles observed more than once (exactly-once breach).
  std::atomic<std::uint64_t> double_settles{0};
  /// Replies posted after the bus closed (stragglers detached by the
  /// fleet's bounded-join shutdown) — orphaned by definition.
  std::atomic<std::uint64_t> dropped{0};

  void post(Item&& item) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!open) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    items.push_back(std::move(item));
    if (wake_fd >= 0) {
      const char byte = 1;
      // EAGAIN (pipe full) is fine: a full pipe is already a wakeup.
      [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
    }
  }
};

/// Per-request completion hook: exactly-once by construction (the settled
/// flag), translating every typed serve error into a structured wire error.
/// Runs on fleet worker threads; touches nothing of the server but the bus.
struct NetServer::InferCompletion final : serve::CompletionHook {
  std::shared_ptr<CompletionBus> bus;
  std::uint64_t conn_id = 0;
  std::uint64_t wire_id = 0;
  std::string model;
  std::atomic<bool> settled{false};

  static void fill_context(const serve::ErrorContext& ctx, WireError& out) {
    out.queue_depth = ctx.queue_depth;
    out.backlog_cost = ctx.backlog_cost;
    out.shard = ctx.shard == serve::ErrorContext::kNone
                    ? WireError::kNoIndex
                    : static_cast<std::uint64_t>(ctx.shard);
    out.worker = ctx.worker == serve::ErrorContext::kNone
                     ? WireError::kNoIndex
                     : static_cast<std::uint64_t>(ctx.worker);
    out.model = ctx.model;
    out.model_version = ctx.model_version;
  }

  void classify(const std::exception_ptr& error, FrameType& code, WireError& out) const {
    try {
      std::rethrow_exception(error);
    } catch (const serve::OverloadError& e) {
      code = FrameType::kErrOverload;
      fill_context(e.context(), out);
      out.message = e.what();
    } catch (const serve::TimeoutError& e) {
      code = FrameType::kErrTimeout;
      fill_context(e.context(), out);
      out.message = e.what();
    } catch (const serve::InjectedFault& e) {
      code = FrameType::kErrFault;
      fill_context(e.context(), out);
      out.message = e.what();
    } catch (const serve::ModelError& e) {
      code = FrameType::kErrModel;
      fill_context(e.context(), out);
      out.message = e.what();
    } catch (const serve::ServeError& e) {
      code = FrameType::kErrInternal;
      fill_context(e.context(), out);
      out.message = e.what();
    } catch (const std::exception& e) {
      code = FrameType::kErrInternal;
      out.message = e.what();
    } catch (...) {
      code = FrameType::kErrInternal;
      out.message = "unknown error";
    }
    if (out.model.empty()) out.model = model;
  }

  void on_complete(serve::ServeRequest&, serve::ServeResult&& result) override {
    if (settled.exchange(true, std::memory_order_acq_rel)) {
      bus->double_settles.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    CompletionBus::Item item;
    item.conn_id = conn_id;
    item.request_id = wire_id;
    item.ok = true;
    item.reply.logits = std::move(result.logits);
    item.reply.queue_ms = result.queue_ms;
    item.reply.service_ms = result.service_ms;
    item.reply.shard = static_cast<std::uint32_t>(result.shard);
    item.reply.batch_requests = static_cast<std::uint32_t>(result.batch_requests);
    item.reply.deadline_missed = result.deadline_missed;
    bus->post(std::move(item));
  }

  void on_error(serve::ServeRequest&, std::exception_ptr error) override {
    if (settled.exchange(true, std::memory_order_acq_rel)) {
      bus->double_settles.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    CompletionBus::Item item;
    item.conn_id = conn_id;
    item.request_id = wire_id;
    item.ok = false;
    classify(error, item.code, item.err);
    bus->post(std::move(item));
  }
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

NetServer::NetServer(serve::Fleet& fleet, NetServerConfig config)
    : fleet_(fleet),
      config_(std::move(config)),
      bus_(std::make_shared<CompletionBus>()),
      counters_(std::make_unique<AtomicCounters>()) {}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  ONESA_CHECK(!started_, "NetServer::start() called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  ONESA_CHECK(listen_fd_ >= 0, "socket() failed: errno " << errno);
  set_nonblocking(listen_fd_);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("NetServer: bad host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("NetServer: bind " + config_.host + ":" +
                std::to_string(config_.port) + " failed: errno " + std::to_string(err));
  }
  ONESA_CHECK(::listen(listen_fd_, config_.listen_backlog) == 0,
              "listen() failed: errno " << errno);
  socklen_t addr_len = sizeof(addr);
  ONESA_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &addr_len) == 0,
              "getsockname() failed: errno " << errno);
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  ONESA_CHECK(::pipe(pipe_fds) == 0, "pipe() failed: errno " << errno);
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    bus_->wake_fd = wake_write_fd_;
  }

  poller_ = std::make_unique<Poller>(config_.force_poll_backend
                                         ? Poller::Backend::kPoll
                                         : Poller::Backend::kDefault);
  poller_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  poller_->add(wake_read_fd_, /*want_read=*/true, /*want_write=*/false);
  accept_paused_ = false;

  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
  ONESA_LOG_INFO << "net: front door listening on " << config_.host << ":" << port_
                 << " (" << (poller_->using_epoll() ? "epoll" : "poll")
                 << ", max " << config_.max_connections << " connections, "
                 << config_.max_frame_bytes << " B frame cap)";
}

void NetServer::block_drain_signals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

void NetServer::install_signal_drain() {
  ONESA_CHECK(!signal_thread_.joinable(), "install_signal_drain() called twice");
  signal_thread_ = std::thread([this] {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    while (!signal_stop_.load(std::memory_order_acquire)) {
      timespec ts{};
      ts.tv_nsec = 100 * 1000 * 1000;  // poll the stop flag at 10 Hz
      const int sig = ::sigtimedwait(&set, nullptr, &ts);
      if (sig == SIGTERM || sig == SIGINT) {
        ONESA_LOG_INFO << "net: " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                       << " received, starting graceful drain";
        initiate_drain();
        return;
      }
    }
  });
}

void NetServer::initiate_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;  // idempotent
  }
  wake();
}

void NetServer::wake() {
  // Through the bus lock so the write end cannot be closed mid-write by a
  // concurrent stop().
  std::lock_guard<std::mutex> lock(bus_->mutex);
  if (bus_->wake_fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(bus_->wake_fd, &byte, 1);
  }
}

bool NetServer::wait_drained(double timeout_ms) {
  std::unique_lock<std::mutex> lock(drained_mutex_);
  if (timeout_ms < 0) {
    drained_cv_.wait(lock, [this] { return drained_; });
    return true;
  }
  return drained_cv_.wait_for(lock, from_ms(timeout_ms), [this] { return drained_; });
}

void NetServer::stop() {
  if (started_) {
    initiate_drain();
    wait_drained(-1.0);
    if (loop_thread_.joinable()) loop_thread_.join();
  }
  signal_stop_.store(true, std::memory_order_release);
  if (signal_thread_.joinable()) signal_thread_.join();
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    bus_->wake_fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  poller_.reset();
  started_ = false;
}

NetServerCounters NetServer::counters() const {
  NetServerCounters out;
  out.connections_accepted = counters_->connections_accepted.load(std::memory_order_relaxed);
  out.frames_received = counters_->frames_received.load(std::memory_order_relaxed);
  out.infers_accepted = counters_->infers_accepted.load(std::memory_order_relaxed);
  out.replies_sent = counters_->replies_sent.load(std::memory_order_relaxed);
  out.protocol_errors = counters_->protocol_errors.load(std::memory_order_relaxed);
  out.overload_replies = counters_->overload_replies.load(std::memory_order_relaxed);
  out.error_replies = counters_->error_replies.load(std::memory_order_relaxed);
  out.idle_evictions = counters_->idle_evictions.load(std::memory_order_relaxed);
  out.slow_client_evictions =
      counters_->slow_client_evictions.load(std::memory_order_relaxed);
  out.orphaned_replies = counters_->orphaned_replies.load(std::memory_order_relaxed) +
                         bus_->dropped.load(std::memory_order_relaxed);
  out.draining_rejects = counters_->draining_rejects.load(std::memory_order_relaxed);
  out.accept_pauses = counters_->accept_pauses.load(std::memory_order_relaxed);
  out.double_settles = bus_->double_settles.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void NetServer::loop() {
  std::vector<Poller::Event> events;
  bool exit_loop = false;
  while (!exit_loop) {
    poller_->wait(events, static_cast<int>(config_.tick_ms));

    for (const Poller::Event& ev : events) {
      if (ev.fd == listen_fd_) {
        if (ev.readable) handle_accept();
        continue;
      }
      if (ev.fd == wake_read_fd_) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto it = conns_by_fd_.find(ev.fd);
      if (it == conns_by_fd_.end()) continue;
      Conn* conn = it->second.get();
      if (ev.readable || ev.hangup) handle_readable(*conn);
      // handle_readable may have closed (and erased) the connection — or, in
      // principle, a new one may have landed on a recycled fd. Re-look-up and
      // require pointer identity before touching it again.
      auto again = conns_by_fd_.find(ev.fd);
      if (again == conns_by_fd_.end() || again->second.get() != conn) continue;
      if (ev.writable) handle_writable(*conn);
    }

    drain_bus();
    check_timeouts();

    if (draining_.load(std::memory_order_acquire) && !drain_started_) {
      drain_started_ = true;
      drain_began_ = Clock::now();
      drain_deadline_ = drain_began_ + from_ms(config_.drain_deadline_ms);
      if (!accept_paused_) poller_->remove(listen_fd_);
      accept_paused_ = true;  // never resumes: the drain owns the listener
      ONESA_LOG_INFO << "net: drain started — accepting stopped, "
                     << inflight_.load(std::memory_order_relaxed)
                     << " request(s) in flight, "
                     << conns_by_fd_.size() << " connection(s) open, deadline "
                     << config_.drain_deadline_ms << " ms";
    }
    if (drain_started_) {
      bool flushed = true;
      for (const auto& [fd, conn] : conns_by_fd_) {
        if (conn->out.size() > conn->out_off) {
          flushed = false;
          break;
        }
      }
      if ((inflight_.load(std::memory_order_relaxed) == 0 && flushed) ||
          Clock::now() >= drain_deadline_) {
        exit_loop = true;
      }
    }
  }
  finish_drain();
}

void NetServer::finish_drain() {
  const std::size_t abandoned = conns_by_fd_.size();
  for (const auto& [fd, conn] : conns_by_fd_) {
    poller_->remove(fd);
    ::close(fd);
    NetMetrics::get().open_conns.sub(1);
  }
  conns_by_fd_.clear();
  conns_by_id_.clear();
  running_.store(false, std::memory_order_release);

  // Fleet drain: every accepted future settles (the documented contract).
  // In-flight completions land on the still-open bus and are orphaned below
  // (their connections are gone).
  fleet_.shutdown();

  std::size_t orphaned_now = 0;
  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    bus_->open = false;
    orphaned_now = bus_->items.size();
    bus_->items.clear();
  }
  if (orphaned_now > 0) {
    counters_->orphaned_replies.fetch_add(orphaned_now, std::memory_order_relaxed);
    NetMetrics::get().orphans.add(orphaned_now);
    inflight_.store(0, std::memory_order_relaxed);
    NetMetrics::get().inflight.set(0);
  }

  const double took =
      std::chrono::duration<double, std::milli>(Clock::now() - drain_began_).count();
  drain_ms_.store(took, std::memory_order_relaxed);
  ONESA_LOG_INFO << "net: drain complete in " << took << " ms ("
                 << counters_->replies_sent.load(std::memory_order_relaxed)
                 << " replies delivered, " << abandoned
                 << " connection(s) hard-closed, "
                 << counters().orphaned_replies << " orphaned replies)";

  {
    std::lock_guard<std::mutex> lock(drained_mutex_);
    drained_ = true;
  }
  drained_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------------

void NetServer::handle_accept() {
  while (!accept_paused_) {
    if (conns_by_fd_.size() >= config_.max_connections) {
      // At the cap: deregister the listener. New peers wait in the kernel's
      // accept backlog (bounded by listen_backlog) — backpressure, not
      // accept-and-churn. A freed slot re-registers it.
      poller_->remove(listen_fd_);
      accept_paused_ = true;
      counters_->accept_pauses.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().accept_pauses.add(1);
      return;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient — the poller will re-arm
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>(config_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = Clock::now();
    poller_->add(fd, /*want_read=*/true, /*want_write=*/false);
    conns_by_id_[conn->id] = conn.get();
    conns_by_fd_[fd] = std::move(conn);
    counters_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().connections.add(1);
    NetMetrics::get().open_conns.add(1);
  }
}

void NetServer::pause_or_resume_accept() {
  if (accept_paused_ && !drain_started_ &&
      !draining_.load(std::memory_order_acquire) &&
      conns_by_fd_.size() < config_.max_connections) {
    poller_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    accept_paused_ = false;
  }
}

void NetServer::close_conn(Conn& conn) {
  const int fd = conn.fd;
  poller_->remove(fd);
  ::close(fd);
  conns_by_id_.erase(conn.id);
  conns_by_fd_.erase(fd);  // destroys conn — must be last
  NetMetrics::get().open_conns.sub(1);
  pause_or_resume_accept();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void NetServer::handle_readable(Conn& conn) {
  // handle_frame (and the reply writes inside it) can close the connection
  // mid-batch; conn ids are never recycled, so liveness is re-checked by id.
  const std::uint64_t conn_id = conn.id;
  const auto live = [&]() -> Conn* {
    auto it = conns_by_id_.find(conn_id);
    return it == conns_by_id_.end() ? nullptr : it->second;
  };

  unsigned char buf[64 * 1024];
  bool peer_gone = false;
  bool framing_failed = false;
  std::vector<Frame> frames;
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.last_activity = Clock::now();
      if (!conn.dialect_known) {
        conn.dialect_known = true;
        // "GET ..." picks the HTTP dialect; anything else is framed binary
        // (a bad first byte fails the decoder's magic check below).
        conn.http = buf[0] == 'G';
      }
      if (conn.http) {
        conn.http_buf.append(reinterpret_cast<const char*>(buf),
                             static_cast<std::size_t>(n));
        if (!conn.mid_frame) {
          conn.mid_frame = true;
          conn.frame_started = conn.last_activity;
        }
        if (conn.http_buf.size() > 8192) {
          counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
          NetMetrics::get().protocol_errors.add(1);
          close_conn(conn);
          return;
        }
        if (conn.http_buf.find("\r\n\r\n") != std::string::npos) {
          conn.mid_frame = false;
          handle_http(conn);
          return;  // reply queued; connection closes after the flush
        }
        continue;
      }
      if (!conn.decoder.feed(buf, static_cast<std::size_t>(n), frames)) {
        // Framing violation: the stream position is unknowable from here —
        // dispatch what parsed, reply kErrProtocol, close once it flushed.
        framing_failed = true;
        break;
      }
      conn.mid_frame = conn.decoder.buffered() > 0;
      if (conn.mid_frame) conn.frame_started = conn.last_activity;
      continue;
    }
    if (n == 0) {
      peer_gone = true;  // EOF
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_gone = true;  // ECONNRESET and friends
    break;
  }

  for (Frame& frame : frames) {
    Conn* c = live();
    if (c == nullptr || c->closing_after_flush) return;
    handle_frame(*c, std::move(frame));
  }
  Conn* c = live();
  if (c == nullptr) return;
  if (framing_failed && !c->closing_after_flush) {
    fail_connection(*c, c->decoder.error(), 0);
    return;
  }
  if (peer_gone) close_conn(*c);
}

void NetServer::handle_frame(Conn& conn, Frame&& frame) {
  counters_->frames_received.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::get().frames.add(1);
  switch (frame.type) {
    case FrameType::kPing:
      send_frame(conn, FrameType::kPong, frame.request_id, nullptr, 0);
      return;
    case FrameType::kMetrics: {
      std::ostringstream os;
      obs::MetricsRegistry::global().write_prometheus(os);
      const std::string text = os.str();
      send_frame(conn, FrameType::kMetricsText, frame.request_id,
                 reinterpret_cast<const unsigned char*>(text.data()), text.size());
      return;
    }
    case FrameType::kInfer:
      handle_infer(conn, frame);
      return;
    default: {
      // A well-framed message of a type only the SERVER may send (replies,
      // errors): the stream is still in sync, so answer kErrProtocol and
      // keep the connection.
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().protocol_errors.add(1);
      WireError err;
      err.message = std::string("client sent a server-side frame type (") +
                    std::string(frame_type_name(frame.type)) + ")";
      send_error(conn, FrameType::kErrProtocol, frame.request_id, std::move(err));
      return;
    }
  }
}

void NetServer::handle_infer(Conn& conn, const Frame& frame) {
  if (draining_.load(std::memory_order_acquire)) {
    counters_->draining_rejects.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().draining_rejects.add(1);
    WireError err;
    err.message = "server is draining: request not accepted, retry elsewhere";
    send_error(conn, FrameType::kErrDraining, frame.request_id, std::move(err));
    return;
  }

  InferRequest req;
  std::string why;
  if (!decode_infer(frame.payload.data(), frame.payload.size(), req, why)) {
    // Malformed PAYLOAD in a well-formed frame: the stream is still in
    // sync, so the reply is an error and the connection lives on.
    counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().protocol_errors.add(1);
    WireError err;
    err.message = "bad infer payload: " + why;
    send_error(conn, FrameType::kErrProtocol, frame.request_id, std::move(err));
    return;
  }

  serve::ModelHandle model;
  try {
    model = fleet_.registry().get(req.model);
  } catch (const std::exception& e) {
    WireError err;
    err.model = req.model;
    err.message = e.what();
    send_error(conn, FrameType::kErrModel, frame.request_id, std::move(err));
    return;
  }

  serve::SubmitOptions options;
  options.priority = req.priority;
  options.deadline_ms = req.deadline_ms;
  auto hook = std::make_shared<InferCompletion>();
  hook->bus = bus_;
  hook->conn_id = conn.id;
  hook->wire_id = frame.request_id;
  hook->model = req.model;

  serve::TaggedRequest tagged =
      serve::make_model_request(std::move(model), std::move(req.input), options);
  tagged.request.hook = hook;

  inflight_.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::get().inflight.add(1);
  ++conn.inflight;
  counters_->infers_accepted.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::get().infers.add(1);
  try {
    // The future is intentionally dropped: the outcome arrives through the
    // hook (exactly once — sheds, errors, and values all route there).
    (void)fleet_.submit(std::move(tagged));
  } catch (const std::exception& e) {
    // Fleet::submit sheds instead of throwing; this is belt-and-braces for
    // anything unexpected below it.
    if (!hook->settled.exchange(true, std::memory_order_acq_rel)) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      NetMetrics::get().inflight.sub(1);
      --conn.inflight;
      WireError err;
      err.model = req.model;
      err.message = std::string("submit failed: ") + e.what();
      send_error(conn, FrameType::kErrInternal, frame.request_id, std::move(err));
    }
  }
}

void NetServer::handle_http(Conn& conn) {
  const std::string& request = conn.http_buf;
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  std::string body;
  std::string status;
  if (line.rfind("GET /metrics", 0) == 0 || line.rfind("GET / ", 0) == 0) {
    std::ostringstream os;
    obs::MetricsRegistry::global().write_prometheus(os);
    body = os.str();
    status = "200 OK";
  } else {
    body = "not found (try GET /metrics)\n";
    status = "404 Not Found";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: text/plain; version=0.0.4"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
                         body;
  if (conn.out.empty()) conn.write_since = Clock::now();
  conn.out.insert(conn.out.end(), response.begin(), response.end());
  conn.closing_after_flush = true;
  flush_or_arm(conn);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void NetServer::send_frame(Conn& conn, FrameType type, std::uint64_t request_id,
                           const unsigned char* payload, std::size_t payload_len) {
  if (conn.out.empty()) conn.write_since = Clock::now();
  encode_frame(conn.out, type, request_id, payload, payload_len);
  counters_->replies_sent.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::get().replies.add(1);
  flush_or_arm(conn);
}

void NetServer::send_error(Conn& conn, FrameType code, std::uint64_t request_id,
                           WireError err) {
  if (conn.out.empty()) conn.write_since = Clock::now();
  encode_error(conn.out, code, request_id, err);
  counters_->replies_sent.fetch_add(1, std::memory_order_relaxed);
  counters_->error_replies.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::get().replies.add(1);
  NetMetrics::get().error_replies.add(1);
  if (code == FrameType::kErrOverload) {
    counters_->overload_replies.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().overloads.add(1);
  }
  flush_or_arm(conn);
}

void NetServer::fail_connection(Conn& conn, const std::string& reason,
                                std::uint64_t request_id) {
  counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::get().protocol_errors.add(1);
  WireError err;
  err.message = reason;
  conn.closing_after_flush = true;
  send_error(conn, FrameType::kErrProtocol, request_id, std::move(err));
}

void NetServer::flush_or_arm(Conn& conn) {
  if (conn.out.size() - conn.out_off > config_.max_write_buffer_bytes) {
    // The peer is not draining its replies and the buffer hit its cap:
    // evict rather than let one slow reader grow unbounded server memory.
    counters_->slow_client_evictions.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().slow_evictions.add(1);
    close_conn(conn);
    return;
  }
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn);  // EPIPE / ECONNRESET: the peer is gone
    return;
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.want_write) {
      conn.want_write = false;
      poller_->modify(conn.fd, /*want_read=*/true, /*want_write=*/false);
    }
    if (conn.closing_after_flush) close_conn(conn);
    return;
  }
  if (!conn.want_write) {
    conn.want_write = true;
    poller_->modify(conn.fd, /*want_read=*/true, /*want_write=*/true);
  }
}

void NetServer::handle_writable(Conn& conn) { flush_or_arm(conn); }

// ---------------------------------------------------------------------------
// Completion bus + timeouts
// ---------------------------------------------------------------------------

void NetServer::drain_bus() {
  std::vector<CompletionBus::Item> items;
  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    if (bus_->items.empty()) return;
    items.swap(bus_->items);
  }
  std::vector<unsigned char> payload;
  for (CompletionBus::Item& item : items) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    NetMetrics::get().inflight.sub(1);
    auto it = conns_by_id_.find(item.conn_id);
    if (it == conns_by_id_.end() || it->second->closing_after_flush) {
      // The client disconnected (or is being closed) while its request was
      // in flight: the fleet future settled exactly once regardless, and
      // the reply is dropped cleanly — never written to a recycled fd.
      counters_->orphaned_replies.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().orphans.add(1);
      continue;
    }
    Conn& conn = *it->second;
    if (conn.inflight > 0) --conn.inflight;
    if (item.ok) {
      payload.clear();
      encode_infer_reply(payload, item.request_id, item.reply);
      // encode_infer_reply emits a complete frame; splice it wholesale.
      if (conn.out.empty()) conn.write_since = Clock::now();
      conn.out.insert(conn.out.end(), payload.begin(), payload.end());
      counters_->replies_sent.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().replies.add(1);
      flush_or_arm(conn);
    } else {
      send_error(conn, item.code, item.request_id, std::move(item.err));
    }
  }
}

void NetServer::check_timeouts() {
  const auto now = Clock::now();
  const auto idle_after = from_ms(config_.idle_timeout_ms);
  const auto frame_after = from_ms(config_.frame_timeout_ms);
  const auto stall_after = from_ms(config_.write_stall_timeout_ms);

  // Collect first: close_conn mutates the map.
  std::vector<Conn*> idle, slow;
  for (const auto& [fd, conn] : conns_by_fd_) {
    if (conn->mid_frame && now - conn->frame_started > frame_after) {
      // Slowloris: a partial frame held open past the deadline.
      slow.push_back(conn.get());
      continue;
    }
    if (conn->out.size() > conn->out_off && now - conn->write_since > stall_after) {
      // Slow reader: replies queued and unread past the deadline.
      slow.push_back(conn.get());
      continue;
    }
    if (conn->inflight == 0 && conn->out.size() == conn->out_off &&
        !conn->mid_frame && now - conn->last_activity > idle_after) {
      idle.push_back(conn.get());
    }
  }
  for (Conn* conn : slow) {
    counters_->slow_client_evictions.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().slow_evictions.add(1);
    close_conn(*conn);
  }
  for (Conn* conn : idle) {
    counters_->idle_evictions.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().idle_evictions.add(1);
    close_conn(*conn);
  }
}

}  // namespace onesa::net
