#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace onesa::net {

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

void BlockingClient::connect(const std::string& host, std::uint16_t port,
                             double recv_timeout_ms) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("BlockingClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw Error("BlockingClient: bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    throw Error("BlockingClient: connect " + host + ":" + std::to_string(port) +
                " failed: errno " + std::to_string(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<long>(recv_timeout_ms / 1000.0);
  tv.tv_usec = static_cast<long>(recv_timeout_ms * 1000.0) % 1000000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void BlockingClient::send_raw(const unsigned char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw Error("BlockingClient: send failed: errno " + std::to_string(errno));
  }
}

std::optional<Frame> BlockingClient::recv_frame() {
  for (;;) {
    if (!pending_.empty()) {
      Frame frame = std::move(pending_.front());
      pending_.erase(pending_.begin());
      return frame;
    }
    unsigned char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!decoder_.feed(buf, static_cast<std::size_t>(n), pending_)) {
        throw Error("BlockingClient: server sent a malformed frame: " +
                    decoder_.error());
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;  // EOF, timeout (EAGAIN), or reset
  }
}

std::string BlockingClient::read_until_eof() {
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return out;  // EOF or timeout
  }
}

std::optional<Frame> BlockingClient::ping(std::uint64_t request_id) {
  std::vector<unsigned char> out;
  encode_frame(out, FrameType::kPing, request_id, nullptr, 0);
  send_raw(out);
  return recv_frame();
}

void BlockingClient::send_infer(std::uint64_t request_id, const InferRequest& req) {
  std::vector<unsigned char> out;
  encode_infer(out, request_id, req);
  send_raw(out);
}

std::optional<Frame> BlockingClient::infer(std::uint64_t request_id,
                                           const InferRequest& req) {
  send_infer(request_id, req);
  return recv_frame();
}

std::optional<Frame> BlockingClient::metrics(std::uint64_t request_id) {
  std::vector<unsigned char> out;
  encode_frame(out, FrameType::kMetrics, request_id, nullptr, 0);
  send_raw(out);
  return recv_frame();
}

void BlockingClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace onesa::net
