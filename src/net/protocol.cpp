#include "net/protocol.hpp"

#include <bit>
#include <cstring>

namespace onesa::net {

namespace {

// Little-endian scalar put/get. Byte-by-byte so the wire format is identical
// on any host; the compiler folds these to single moves on little-endian
// machines anyway.

void put_u16(std::vector<unsigned char>& out, std::uint16_t v) {
  out.push_back(static_cast<unsigned char>(v & 0xFF));
  out.push_back(static_cast<unsigned char>((v >> 8) & 0xFF));
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::vector<unsigned char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

double get_f64(const unsigned char* p) { return std::bit_cast<double>(get_u64(p)); }

/// Matrix dimensions a peer may claim. Far above anything the serving tier
/// accepts per request, far below anything that could overflow or OOM when
/// multiplied — the product is validated against the actual payload length
/// before any allocation.
constexpr std::uint32_t kMaxWireDim = 1u << 20;

bool valid_dims(std::uint32_t rows, std::uint32_t cols, std::string& error) {
  if (rows == 0 || cols == 0) {
    error = "zero-sized matrix";
    return false;
  }
  if (rows > kMaxWireDim || cols > kMaxWireDim) {
    error = "matrix dimension exceeds wire limit";
    return false;
  }
  return true;
}

}  // namespace

std::string_view frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kPing: return "ping";
    case FrameType::kInfer: return "infer";
    case FrameType::kMetrics: return "metrics";
    case FrameType::kPong: return "pong";
    case FrameType::kInferOk: return "infer_ok";
    case FrameType::kMetricsText: return "metrics_text";
    case FrameType::kErrProtocol: return "err_protocol";
    case FrameType::kErrOverload: return "err_overload";
    case FrameType::kErrModel: return "err_model";
    case FrameType::kErrTimeout: return "err_timeout";
    case FrameType::kErrFault: return "err_fault";
    case FrameType::kErrDraining: return "err_draining";
    case FrameType::kErrInternal: return "err_internal";
  }
  return "unknown";
}

bool is_error_type(FrameType type) {
  return static_cast<std::uint8_t>(type) >= 0xE0;
}

namespace {

bool known_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kPing:
    case FrameType::kInfer:
    case FrameType::kMetrics:
    case FrameType::kPong:
    case FrameType::kInferOk:
    case FrameType::kMetricsText:
    case FrameType::kErrProtocol:
    case FrameType::kErrOverload:
    case FrameType::kErrModel:
    case FrameType::kErrTimeout:
    case FrameType::kErrFault:
    case FrameType::kErrDraining:
    case FrameType::kErrInternal:
      return true;
  }
  return false;
}

}  // namespace

void encode_frame(std::vector<unsigned char>& out, FrameType type,
                  std::uint64_t request_id, const unsigned char* payload,
                  std::size_t payload_len) {
  out.reserve(out.size() + kHeaderBytes + payload_len);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<unsigned char>(type));
  out.push_back(0);  // flags
  put_u16(out, 0);   // reserved
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload_len));
  if (payload_len > 0) out.insert(out.end(), payload, payload + payload_len);
}

// ----------------------------------------------------------------- infer

void encode_infer(std::vector<unsigned char>& out, std::uint64_t request_id,
                  const InferRequest& req) {
  std::vector<unsigned char> payload;
  payload.reserve(20 + req.model.size() + req.input.size() * 8);
  payload.push_back(static_cast<unsigned char>(req.priority));
  payload.push_back(0);
  put_u16(payload, static_cast<std::uint16_t>(req.model.size()));
  put_f64(payload, req.deadline_ms);
  put_u32(payload, static_cast<std::uint32_t>(req.input.rows()));
  put_u32(payload, static_cast<std::uint32_t>(req.input.cols()));
  payload.insert(payload.end(), req.model.begin(), req.model.end());
  for (std::size_t i = 0; i < req.input.size(); ++i)
    put_f64(payload, req.input.at_flat(i));
  encode_frame(out, FrameType::kInfer, request_id, payload.data(), payload.size());
}

bool decode_infer(const unsigned char* payload, std::size_t len, InferRequest& out,
                  std::string& error) {
  constexpr std::size_t kPrelude = 1 + 1 + 2 + 8 + 4 + 4;
  if (len < kPrelude) {
    error = "infer payload shorter than its fixed prelude";
    return false;
  }
  const std::uint8_t priority = payload[0];
  if (priority > static_cast<std::uint8_t>(serve::Priority::kBulk)) {
    error = "unknown priority class";
    return false;
  }
  const std::uint16_t name_len = get_u16(payload + 2);
  const double deadline_ms = get_f64(payload + 4);
  const std::uint32_t rows = get_u32(payload + 12);
  const std::uint32_t cols = get_u32(payload + 16);
  if (!valid_dims(rows, cols, error)) return false;
  if (name_len == 0) {
    error = "empty model name";
    return false;
  }
  const std::uint64_t want = kPrelude + name_len +
                             static_cast<std::uint64_t>(rows) * cols * 8;
  if (want != len) {
    error = "infer payload length does not match its declared shape";
    return false;
  }
  if (!(deadline_ms >= 0.0) || deadline_ms > 1e9) {  // NaN fails the >= too
    error = "deadline_ms out of range";
    return false;
  }
  out.priority = static_cast<serve::Priority>(priority);
  out.deadline_ms = deadline_ms;
  out.model.assign(reinterpret_cast<const char*>(payload + kPrelude), name_len);
  const unsigned char* data = payload + kPrelude + name_len;
  out.input = tensor::Matrix(rows, cols, tensor::kUninitialized);
  for (std::size_t i = 0; i < static_cast<std::size_t>(rows) * cols; ++i)
    out.input.at_flat(i) = get_f64(data + i * 8);
  return true;
}

void encode_infer_reply(std::vector<unsigned char>& out, std::uint64_t request_id,
                        const InferReply& reply) {
  std::vector<unsigned char> payload;
  payload.reserve(36 + reply.logits.size() * 8);
  put_u32(payload, static_cast<std::uint32_t>(reply.logits.rows()));
  put_u32(payload, static_cast<std::uint32_t>(reply.logits.cols()));
  put_f64(payload, reply.queue_ms);
  put_f64(payload, reply.service_ms);
  put_u32(payload, reply.shard);
  put_u32(payload, reply.batch_requests);
  payload.push_back(reply.deadline_missed ? 1 : 0);
  payload.push_back(0);
  put_u16(payload, 0);
  for (std::size_t i = 0; i < reply.logits.size(); ++i)
    put_f64(payload, reply.logits.at_flat(i));
  encode_frame(out, FrameType::kInferOk, request_id, payload.data(), payload.size());
}

bool decode_infer_reply(const unsigned char* payload, std::size_t len,
                        InferReply& out, std::string& error) {
  constexpr std::size_t kPrelude = 4 + 4 + 8 + 8 + 4 + 4 + 4;
  if (len < kPrelude) {
    error = "infer reply shorter than its fixed prelude";
    return false;
  }
  const std::uint32_t rows = get_u32(payload);
  const std::uint32_t cols = get_u32(payload + 4);
  if (!valid_dims(rows, cols, error)) return false;
  if (kPrelude + static_cast<std::uint64_t>(rows) * cols * 8 != len) {
    error = "infer reply length does not match its declared shape";
    return false;
  }
  out.queue_ms = get_f64(payload + 8);
  out.service_ms = get_f64(payload + 16);
  out.shard = get_u32(payload + 24);
  out.batch_requests = get_u32(payload + 28);
  out.deadline_missed = payload[32] != 0;
  const unsigned char* data = payload + kPrelude;
  out.logits = tensor::Matrix(rows, cols, tensor::kUninitialized);
  for (std::size_t i = 0; i < static_cast<std::size_t>(rows) * cols; ++i)
    out.logits.at_flat(i) = get_f64(data + i * 8);
  return true;
}

// ----------------------------------------------------------------- errors

void encode_error(std::vector<unsigned char>& out, FrameType code,
                  std::uint64_t request_id, const WireError& err) {
  std::vector<unsigned char> payload;
  payload.reserve(44 + err.model.size() + err.message.size());
  put_u64(payload, err.queue_depth);
  put_u64(payload, err.backlog_cost);
  put_u64(payload, err.shard);
  put_u64(payload, err.worker);
  put_u64(payload, err.model_version);
  put_u16(payload, static_cast<std::uint16_t>(err.model.size()));
  put_u16(payload, static_cast<std::uint16_t>(err.message.size()));
  payload.insert(payload.end(), err.model.begin(), err.model.end());
  payload.insert(payload.end(), err.message.begin(), err.message.end());
  encode_frame(out, code, request_id, payload.data(), payload.size());
}

bool decode_error(const unsigned char* payload, std::size_t len, WireError& out,
                  std::string& error) {
  constexpr std::size_t kPrelude = 5 * 8 + 2 + 2;
  if (len < kPrelude) {
    error = "error payload shorter than its fixed prelude";
    return false;
  }
  const std::uint16_t model_len = get_u16(payload + 40);
  const std::uint16_t message_len = get_u16(payload + 42);
  if (kPrelude + model_len + static_cast<std::size_t>(message_len) != len) {
    error = "error payload length does not match its declared strings";
    return false;
  }
  out.queue_depth = get_u64(payload);
  out.backlog_cost = get_u64(payload + 8);
  out.shard = get_u64(payload + 16);
  out.worker = get_u64(payload + 24);
  out.model_version = get_u64(payload + 32);
  out.model.assign(reinterpret_cast<const char*>(payload + kPrelude), model_len);
  out.message.assign(reinterpret_cast<const char*>(payload + kPrelude + model_len),
                     message_len);
  return true;
}

// ---------------------------------------------------------------- decoder

bool FrameDecoder::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buffer_.clear();
  buffer_.shrink_to_fit();
  return false;
}

bool FrameDecoder::feed(const unsigned char* data, std::size_t len,
                        std::vector<Frame>& out) {
  if (failed_) return false;
  buffer_.insert(buffer_.end(), data, data + len);

  std::size_t pos = 0;
  while (buffer_.size() - pos >= kHeaderBytes) {
    const unsigned char* h = buffer_.data() + pos;
    if (std::memcmp(h, kMagic, 4) != 0) return fail("bad frame magic");
    const std::uint8_t type = h[4];
    if (!known_type(type)) return fail("unknown frame type");
    if (h[5] != 0 || h[6] != 0 || h[7] != 0)
      return fail("nonzero flags/reserved bits (unsupported protocol revision)");
    const std::uint64_t request_id = get_u64(h + 8);
    const std::uint32_t payload_len = get_u32(h + 16);
    // Validate the CLAIMED length before buffering towards it: an attacker
    // announcing a 4 GiB payload is rejected here, with zero bytes allocated
    // on their behalf.
    if (payload_len > max_frame_bytes_) return fail("frame payload exceeds limit");
    if (buffer_.size() - pos - kHeaderBytes < payload_len) break;  // incomplete
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.request_id = request_id;
    frame.payload.assign(h + kHeaderBytes, h + kHeaderBytes + payload_len);
    out.push_back(std::move(frame));
    pos += kHeaderBytes + payload_len;
  }
  if (pos > 0) buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(pos));
  return true;
}

}  // namespace onesa::net
