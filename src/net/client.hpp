// Minimal blocking client for the front-door protocol, shared by the test
// suite and the load generator. Intentionally simple: one socket, blocking
// reads with a receive timeout, and deliberately NO protection against the
// caller doing hostile things — tests use send_raw() to deliver truncated,
// oversized, and fuzzed byte streams, and close()/shutdown_write() to
// abandon requests mid-flight.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace onesa::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connect with a receive timeout; throws onesa::Error on failure.
  void connect(const std::string& host, std::uint16_t port,
               double recv_timeout_ms = 5000.0);
  bool connected() const { return fd_ >= 0; }

  /// Send raw bytes verbatim (fuzzing / partial-frame injection). Throws on
  /// a broken pipe.
  void send_raw(const unsigned char* data, std::size_t len);
  void send_raw(const std::vector<unsigned char>& data) {
    send_raw(data.data(), data.size());
  }

  /// Read one complete frame. nullopt on EOF or receive timeout.
  std::optional<Frame> recv_frame();

  /// Read raw bytes until EOF or receive timeout (HTTP-dialect tests).
  std::string read_until_eof();

  // Convenience request/response round trips (send one frame, read one).
  std::optional<Frame> ping(std::uint64_t request_id);
  void send_infer(std::uint64_t request_id, const InferRequest& req);
  std::optional<Frame> infer(std::uint64_t request_id, const InferRequest& req);
  std::optional<Frame> metrics(std::uint64_t request_id);

  /// Half-close: FIN the write side, keep reading (drain semantics tests).
  void shutdown_write();
  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_{std::size_t{64} << 20};  // generous: trust the server
  std::vector<Frame> pending_;
};

}  // namespace onesa::net
