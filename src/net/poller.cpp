#include "net/poller.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

#include "common/error.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace onesa::net {

Poller::Poller(Backend backend) {
#if defined(__linux__)
  if (backend == Backend::kDefault) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    ONESA_CHECK(epoll_fd_ >= 0, "epoll_create1 failed: errno " << errno);
  }
#else
  (void)backend;  // only the poll fallback exists off-Linux
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {

unsigned interest_bits(bool want_read, bool want_write) {
  return (want_read ? 1u : 0u) | (want_write ? 2u : 0u);
}

#if defined(__linux__)
std::uint32_t epoll_events(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
#endif

}  // namespace

void Poller::add(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_events(want_read, want_write);
    ev.data.fd = fd;
    ONESA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl(ADD) failed: errno " << errno);
    return;
  }
#endif
  interest_[fd] = interest_bits(want_read, want_write);
}

void Poller::modify(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_events(want_read, want_write);
    ev.data.fd = fd;
    ONESA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll_ctl(MOD) failed: errno " << errno);
    return;
  }
#endif
  interest_[fd] = interest_bits(want_read, want_write);
}

void Poller::remove(int fd) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    // Removal of an already-closed fd is tolerated (EBADF/ENOENT): the loop
    // closes fds and deregisters in whichever order is convenient.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  interest_.erase(fd);
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw Error("epoll_wait failed: errno " + std::to_string(errno));
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, bits] : interest_) {
    pollfd p{};
    p.fd = fd;
    if (bits & 1u) p.events |= POLLIN;
    if (bits & 2u) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw Error("poll failed: errno " + std::to_string(errno));
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out.size();
}

}  // namespace onesa::net
