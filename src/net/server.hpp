// The network front door: a single-reactor socket server fronting a
// serve::Fleet with the length-prefixed binary protocol of net/protocol.hpp.
// Robustness is the design center — the server assumes every peer is broken,
// slow, or hostile, and survives all three:
//
//  - MALFORMED INPUT. Framing violations (bad magic, oversized/garbage
//    frames) get a kErrProtocol reply and a close — a desynced stream cannot
//    be resynced. A malformed PAYLOAD inside a valid frame (bad shape,
//    unknown priority) gets a kErrProtocol reply and the connection lives
//    on: framing is still in sync. Nothing a peer sends can crash or leak.
//  - SLOW CLIENTS (slowloris). A peer holding a partial frame open longer
//    than frame_timeout_ms, or failing to drain its replies for
//    write_stall_timeout_ms (or past the per-connection write-buffer cap),
//    is evicted — counted in net_slow_client_evictions_total. Idle
//    connections close after idle_timeout_ms.
//  - CONNECTION CAP + ACCEPT BACKPRESSURE. At max_connections the listener
//    is deregistered from the poller: new peers queue in the kernel's
//    accept backlog (bounded by listen_backlog) instead of being
//    accept()ed and churned. Accepting resumes when a slot frees.
//  - OVERLOAD WITH CONTEXT. A fleet shed surfaces as kErrOverload carrying
//    the serve::ErrorContext fields (queue depth, backlog cost, model,
//    shard) — a "429 with depth" a load-aware client can back off on,
//    instead of a dropped connection it can only retry into the collapse.
//  - EXACTLY-ONCE REPLIES. Every infer's completion (value or typed error)
//    arrives through a per-request CompletionHook that settles at most once
//    (violations are counted, never silent). If the client disconnected
//    mid-flight, the fleet future still settles and the reply is dropped
//    cleanly (net_orphaned_replies_total) — never written to a recycled fd.
//  - GRACEFUL DRAIN. initiate_drain() (or SIGTERM via the watcher thread —
//    see install_signal_drain) stops accepting, answers new infers with
//    kErrDraining, finishes every in-flight request and flushes every
//    reply, bounded by drain_deadline_ms, then calls Fleet::shutdown()
//    (idempotent and concurrency-safe) and closes every socket.
//
// THREAD MODEL. One event-loop thread owns every socket. Fleet completions
// land on worker threads and are handed back through a mutex-guarded
// CompletionBus plus a self-pipe wakeup; the bus is a shared_ptr held by
// every in-flight hook, so a straggler completing after the server died
// posts into a closed bus instead of a freed one. The optional signal
// watcher is a third thread sigwait()ing on SIGTERM/SIGINT.
//
// OBSERVABILITY. /metrics two ways: a kMetrics frame, or a plain HTTP
// "GET /metrics" on the same port (the first bytes of a connection pick the
// dialect) — both return MetricsRegistry::write_prometheus text, including
// the net_* counters next to the serve_* ones.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.hpp"
#include "net/protocol.hpp"
#include "serve/fleet.hpp"

namespace onesa::net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port() after start().
  std::uint16_t port = 0;
  int listen_backlog = 128;
  /// Concurrent connections served; excess peers wait in the kernel's
  /// accept backlog (backpressure), they are not accepted-and-dropped.
  std::size_t max_connections = 256;
  /// Bound on one frame's payload (protocol error beyond it).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bound on one connection's unflushed reply bytes (slow-reader eviction).
  std::size_t max_write_buffer_bytes = std::size_t{8} << 20;
  /// Connection with no traffic and nothing in flight closes after this.
  double idle_timeout_ms = 60000.0;
  /// A partial frame older than this evicts the connection (slowloris).
  double frame_timeout_ms = 5000.0;
  /// Unflushed replies older than this evict the connection (slow reader).
  double write_stall_timeout_ms = 5000.0;
  /// Bound on the drain: in-flight requests + reply flush get this long
  /// before the server hard-closes what remains. Fleet::shutdown() runs
  /// either way, so every accepted future still settles.
  double drain_deadline_ms = 10000.0;
  /// Event-loop timer granularity (timeout checks, drain progress).
  double tick_ms = 10.0;
  /// Force the portable poll(2) backend (tests; default epoll on Linux).
  bool force_poll_backend = false;
};

/// Monotonic counters of the front door, exposed both here (tests, loadgen
/// assertions) and as net_* metrics in the global registry.
struct NetServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t infers_accepted = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t overload_replies = 0;
  std::uint64_t error_replies = 0;  // every kErr* reply, overloads included
  std::uint64_t idle_evictions = 0;
  std::uint64_t slow_client_evictions = 0;
  std::uint64_t orphaned_replies = 0;
  std::uint64_t draining_rejects = 0;
  std::uint64_t accept_pauses = 0;
  /// Completion-hook settles observed more than once per request. The
  /// exactly-once contract says this stays 0 forever; the chaos gate
  /// asserts it.
  std::uint64_t double_settles = 0;
};

class NetServer {
 public:
  /// The fleet must outlive the server. The server does not own it, but a
  /// drain (including the one run by stop()/the destructor) finishes by
  /// calling fleet.shutdown() — that is the documented drain contract.
  NetServer(serve::Fleet& fleet, NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen + spawn the event loop. Throws onesa::Error on bind
  /// failure (port taken, bad host).
  void start();

  /// The bound port (resolves config.port == 0 to the ephemeral choice).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Block SIGTERM/SIGINT in the calling thread (and every thread it spawns
  /// afterwards). Call FIRST THING in main, before the fleet exists, so no
  /// worker thread can receive the process-directed signal with the default
  /// (terminating) disposition.
  static void block_drain_signals();

  /// Spawn the watcher thread that turns SIGTERM/SIGINT into
  /// initiate_drain(). Requires block_drain_signals() to have run first.
  void install_signal_drain();

  /// Begin a graceful drain (async; returns immediately). Safe from any
  /// thread, idempotent. wait_drained() observes completion.
  void initiate_drain();

  /// Wait until the drain (and Fleet::shutdown) finished. timeout_ms < 0
  /// waits forever. Returns true when drained.
  bool wait_drained(double timeout_ms = -1.0);

  /// Drain with the configured deadline, wait, join every thread. Idempotent;
  /// also run by the destructor.
  void stop();

  /// Snapshot of the front-door counters (single consistent-enough read of
  /// relaxed atomics — exact once the server is quiescent).
  NetServerCounters counters() const;

  /// How long the last drain took, ms (0 before any drain completed).
  double drain_ms() const { return drain_ms_.load(std::memory_order_relaxed); }

  /// Requests accepted into the fleet whose reply has not yet been
  /// delivered or dropped.
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

 private:
  struct Conn;
  struct CompletionBus;
  struct InferCompletion;

  void loop();
  void handle_accept();
  void pause_or_resume_accept();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void handle_frame(Conn& conn, Frame&& frame);
  void handle_infer(Conn& conn, const Frame& frame);
  void handle_http(Conn& conn);
  void drain_bus();
  void check_timeouts();
  void send_frame(Conn& conn, FrameType type, std::uint64_t request_id,
                  const unsigned char* payload, std::size_t payload_len);
  void send_error(Conn& conn, FrameType code, std::uint64_t request_id,
                  WireError err);
  /// Reply-then-close for stream-level violations: the error frame is
  /// queued and the connection closes once it flushed (or timed out).
  void fail_connection(Conn& conn, const std::string& reason,
                       std::uint64_t request_id);
  /// Flush as much of conn's write buffer as the socket takes right now;
  /// arms/disarms write interest and enforces the write-buffer cap.
  void flush_or_arm(Conn& conn);
  void close_conn(Conn& conn);
  void finish_drain();
  void wake();

  serve::Fleet& fleet_;
  NetServerConfig config_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<Poller> poller_;
  bool accept_paused_ = false;

  std::unordered_map<int, std::unique_ptr<Conn>> conns_by_fd_;
  std::unordered_map<std::uint64_t, Conn*> conns_by_id_;
  std::uint64_t next_conn_id_ = 1;

  std::shared_ptr<CompletionBus> bus_;

  std::thread loop_thread_;
  std::thread signal_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> signal_stop_{false};
  bool drain_started_ = false;  // loop-thread state
  std::chrono::steady_clock::time_point drain_began_{};
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::mutex drained_mutex_;
  std::condition_variable drained_cv_;
  bool drained_ = false;
  bool started_ = false;
  std::atomic<double> drain_ms_{0.0};

  std::atomic<std::size_t> inflight_{0};

  // Counters: relaxed atomics, mirrored into the obs registry on update.
  struct AtomicCounters;
  std::unique_ptr<AtomicCounters> counters_;
};

}  // namespace onesa::net
