// Wire protocol of the network front door: a compact length-prefixed binary
// framing over TCP, designed so a hostile or broken peer can never crash the
// server — every frame is bounded, every parse is total (no assumption about
// the peer survives past a validation), and every malformed input has a
// deterministic answer (a kErrProtocol reply, never an aborted process).
//
// FRAME LAYOUT (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "OSA1"
//   4       1     type (FrameType)
//   5       1     flags (must be 0 in v1)
//   6       2     reserved (must be 0)
//   8       8     request id (client-chosen, echoed verbatim in the reply)
//   16      4     payload length N (bounded by the decoder's max_frame_bytes)
//   20      N     payload
//
// REQUEST TYPES              REPLY TYPES
//   kPing     (empty)          kPong        (empty)
//   kInfer    (InferRequest)   kInferOk     (InferReply)
//   kMetrics  (empty)          kMetricsText (Prometheus text)
//
// ERROR REPLIES. Every error frame carries the same structured payload
// (WireError) mapping serve::ErrorContext onto the wire: queue depth and
// backlog cost at the moment of rejection (the "429 with depth"), the
// shard/worker that failed, the model+version, and a human-readable message.
// The frame TYPE is the error code:
//
//   kErrProtocol — malformed frame or payload (the peer's fault)
//   kErrOverload — admission control / brownout shed (serve::OverloadError)
//   kErrModel    — unknown model or worker-side model failure (ModelError)
//   kErrTimeout  — fleet per-request timeout (TimeoutError)
//   kErrFault    — injected fault surfaced un-retried (InjectedFault)
//   kErrDraining — server is draining; request not accepted
//   kErrInternal — anything else (still structured, never a hangup)
//
// The FrameDecoder is the robustness kernel: it consumes an arbitrary byte
// stream incrementally (partial frames across any number of reads), yields
// complete frames, and flags a framing violation (bad magic, nonzero
// flags/reserved, oversized payload) as a terminal protocol error — after
// which the connection's stream position is unknowable and the server must
// reply-and-close. Payload-level validation (decode_* helpers) is separate:
// a bad payload inside a well-framed message leaves the stream in sync, so
// the server replies kErrProtocol and keeps the connection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.hpp"
#include "tensor/matrix.hpp"

namespace onesa::net {

inline constexpr unsigned char kMagic[4] = {'O', 'S', 'A', '1'};
inline constexpr std::size_t kHeaderBytes = 20;
/// Default bound on one frame's payload. A peer claiming more is a protocol
/// error before any allocation happens — length is validated, then trusted.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  // requests
  kPing = 0x01,
  kInfer = 0x02,
  kMetrics = 0x03,
  // replies
  kPong = 0x81,
  kInferOk = 0x82,
  kMetricsText = 0x83,
  // structured error replies (payload: WireError)
  kErrProtocol = 0xE0,
  kErrOverload = 0xE1,
  kErrModel = 0xE2,
  kErrTimeout = 0xE3,
  kErrFault = 0xE4,
  kErrDraining = 0xE5,
  kErrInternal = 0xE6,
};

std::string_view frame_type_name(FrameType type);
bool is_error_type(FrameType type);

/// One complete, validated-at-the-framing-level message.
struct Frame {
  FrameType type = FrameType::kPing;
  std::uint64_t request_id = 0;
  std::vector<unsigned char> payload;
};

/// Append a complete frame (header + payload) to `out`.
void encode_frame(std::vector<unsigned char>& out, FrameType type,
                  std::uint64_t request_id, const unsigned char* payload,
                  std::size_t payload_len);

// --------------------------------------------------------------- payloads

/// kInfer payload: u8 priority, u8 reserved, u16 model-name length,
/// f64 deadline_ms, u32 rows, u32 cols, name bytes, rows*cols f64 (row-major).
struct InferRequest {
  std::string model;
  serve::Priority priority = serve::Priority::kNormal;
  double deadline_ms = 0.0;
  tensor::Matrix input;
};

void encode_infer(std::vector<unsigned char>& out, std::uint64_t request_id,
                  const InferRequest& req);
/// Total validation: every length is checked against `len` before any read;
/// returns false (with a reason in `error`) instead of ever trusting the peer.
bool decode_infer(const unsigned char* payload, std::size_t len,
                  InferRequest& out, std::string& error);

/// kInferOk payload: u32 rows, u32 cols, f64 queue_ms, f64 service_ms,
/// u32 shard, u32 batch_requests, u8 deadline_missed, u8[3] pad, data f64s.
struct InferReply {
  tensor::Matrix logits;
  double queue_ms = 0.0;
  double service_ms = 0.0;
  std::uint32_t shard = 0;
  std::uint32_t batch_requests = 1;
  bool deadline_missed = false;
};

void encode_infer_reply(std::vector<unsigned char>& out, std::uint64_t request_id,
                        const InferReply& reply);
bool decode_infer_reply(const unsigned char* payload, std::size_t len,
                        InferReply& out, std::string& error);

/// Error payload shared by every kErr* frame: serve::ErrorContext on the
/// wire. kNoIndex mirrors ErrorContext::kNone for shard/worker.
struct WireError {
  static constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

  std::uint64_t queue_depth = 0;
  std::uint64_t backlog_cost = 0;
  std::uint64_t shard = kNoIndex;
  std::uint64_t worker = kNoIndex;
  std::uint64_t model_version = 0;
  std::string model;
  std::string message;
};

void encode_error(std::vector<unsigned char>& out, FrameType code,
                  std::uint64_t request_id, const WireError& err);
bool decode_error(const unsigned char* payload, std::size_t len, WireError& out,
                  std::string& error);

// ---------------------------------------------------------------- decoder

/// Incremental frame extractor over an untrusted byte stream. feed() accepts
/// any number of bytes (a single byte at a time is fine) and appends every
/// complete frame to `out`. A framing violation is terminal: failed() stays
/// true, further bytes are ignored, and error() says why — the caller
/// replies kErrProtocol and closes, because a desynced stream cannot be
/// re-synced safely.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Returns false when the stream is (or already was) in protocol error.
  bool feed(const unsigned char* data, std::size_t len, std::vector<Frame>& out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered towards the next (incomplete) frame — nonzero means the
  /// peer is mid-frame, which the server's slow-client watchdog times.
  std::size_t buffered() const { return buffer_.size(); }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  bool fail(std::string reason);

  std::size_t max_frame_bytes_;
  std::vector<unsigned char> buffer_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace onesa::net
