// Deterministic random number generation. All stochastic components
// (dataset synthesis, weight init, trainers) take an explicit Rng so every
// experiment in the repo is reproducible from a seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace onesa {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x0E5A2024ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Index into a discrete distribution given unnormalized weights.
  std::size_t categorical(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child generator (for parallel components).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace onesa
