// Error handling primitives for the ONE-SA library.
//
// The library throws `onesa::Error` (derived from std::runtime_error) for
// recoverable configuration/usage errors and uses ONESA_CHECK for internal
// invariants. Hot loops use ONESA_DCHECK which compiles out in release
// builds with NDEBUG.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace onesa {

/// Base exception for all errors raised by the ONE-SA library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a user-supplied configuration is inconsistent
/// (e.g. zero-sized systolic array, non-power-of-two granularity).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when matrix/tensor shapes are incompatible with an operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(std::string_view kind, std::string_view cond,
                                      std::string_view file, int line,
                                      const std::string& msg);

/// Stream-style message builder used by the CHECK macros.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace onesa

/// Always-on invariant check; throws onesa::Error on failure.
#define ONESA_CHECK(cond, msg)                                                   \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::onesa::detail::throw_check_failure(                                      \
          "CHECK", #cond, __FILE__, __LINE__,                                    \
          (::onesa::detail::MessageBuilder{} << msg).str());                     \
    }                                                                            \
  } while (false)

/// Shape-compatibility check; throws onesa::ShapeError on failure.
#define ONESA_CHECK_SHAPE(cond, msg)                                             \
  do {                                                                           \
    if (!(cond)) {                                                               \
      throw ::onesa::ShapeError(                                                 \
          (::onesa::detail::MessageBuilder{} << "shape mismatch: " << msg        \
                                             << " (" #cond ")")                  \
              .str());                                                           \
    }                                                                            \
  } while (false)

/// Debug-only invariant check; removed when NDEBUG is defined.
#ifdef NDEBUG
#define ONESA_DCHECK(cond, msg) \
  do {                          \
  } while (false)
#else
#define ONESA_DCHECK(cond, msg) ONESA_CHECK(cond, msg)
#endif
