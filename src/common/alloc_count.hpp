// Heap-allocation counting: the measurement half of the zero-allocation
// serve path.
//
// alloc_count.cpp replaces the global operator new/delete family with thin
// malloc wrappers that bump THREAD-LOCAL counters before allocating. The
// replacement is conformant (works under ASan/TSan/UBSan, which intercept
// the underlying malloc) and costs one thread-local increment per heap
// allocation process-wide — there is no arming knob because there is
// nothing worth turning off.
//
// Counters are per-thread on purpose: "allocations per request on the
// serve path" means allocations made by WORKER threads between two
// snapshots. Each pool worker publishes its own counter after every batch
// (ServerPool::worker_heap_allocations sums them), so the bench measures
// exactly the queue→batch→infer→deliver path and is never polluted by the
// submitter building inputs or the client destroying results.
//
// Linker note: the replacement operators live in alloc_count.o of the
// static library, so they are active precisely in binaries that reference
// some symbol from this header (the serve tier does). Binaries that never
// ask for counts keep the default operators — same malloc/free underneath,
// so the two can never mix within one binary.
#pragma once

#include <cstdint>

namespace onesa::alloccount {

/// operator-new calls made by the calling thread so far (monotone).
std::uint64_t thread_allocations() noexcept;
/// Bytes requested by those calls (monotone; oversized by class rounding
/// only where callers round, which the counter does not do).
std::uint64_t thread_bytes() noexcept;
/// operator-delete calls made by the calling thread so far (monotone).
std::uint64_t thread_deallocations() noexcept;

}  // namespace onesa::alloccount
