#include "common/alloc_count.hpp"

#include <cstddef>
#include <cstdlib>
#include <new>

namespace onesa::alloccount {

namespace {
// Constant-initialized: safe to bump from any allocation, including ones
// made during TLS construction/teardown of other thread_local objects.
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_bytes = 0;
thread_local std::uint64_t t_frees = 0;

void* counted_malloc(std::size_t n) noexcept {
  ++t_allocs;
  t_bytes += n;
  return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned(std::size_t n, std::size_t align) noexcept {
  ++t_allocs;
  t_bytes += n;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (p != nullptr) ++t_frees;
  std::free(p);  // posix_memalign memory is free()-compatible
}
}  // namespace

std::uint64_t thread_allocations() noexcept { return t_allocs; }
std::uint64_t thread_bytes() noexcept { return t_bytes; }
std::uint64_t thread_deallocations() noexcept { return t_frees; }

}  // namespace onesa::alloccount

// ---------------------------------------------------------------------------
// Global replacement operators. Counting happens before the allocation so a
// throwing failure path is still counted as the attempt it was.

void* operator new(std::size_t n) {
  if (void* p = onesa::alloccount::counted_malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = onesa::alloccount::counted_malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return onesa::alloccount::counted_malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return onesa::alloccount::counted_malloc(n);
}
void* operator new(std::size_t n, std::align_val_t align) {
  if (void* p = onesa::alloccount::counted_aligned(n, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  if (void* p = onesa::alloccount::counted_aligned(n, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return onesa::alloccount::counted_aligned(n, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return onesa::alloccount::counted_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { onesa::alloccount::counted_free(p); }
void operator delete[](void* p) noexcept { onesa::alloccount::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { onesa::alloccount::counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept {
  onesa::alloccount::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  onesa::alloccount::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  onesa::alloccount::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  onesa::alloccount::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  onesa::alloccount::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  onesa::alloccount::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  onesa::alloccount::counted_free(p);
}
