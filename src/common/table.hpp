// ASCII table formatting used by the benchmark harnesses to print
// paper-style tables (Table I .. Table V) and figure series.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace onesa {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Append a row; cells beyond the header width are dropped, missing cells padded.
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
  }

  /// Convenience: format "value (ratio%)" cells like the paper's Table II.
  static std::string with_ratio(double value, double baseline, int precision = 1);

  void render(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace onesa
