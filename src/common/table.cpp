#include "common/table.hpp"

#include <algorithm>

namespace onesa {

std::string TablePrinter::with_ratio(double value, double baseline, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(0) << value;
  if (baseline > 0) {
    out << " (" << std::setprecision(precision) << value / baseline * 100.0 << "%)";
  }
  return out.str();
}

void TablePrinter::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < header_.size() && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto print_sep = [&] {
    out << "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream out;
  render(out);
  return out.str();
}

}  // namespace onesa
