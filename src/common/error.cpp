#include "common/error.hpp"

namespace onesa::detail {

void throw_check_failure(std::string_view kind, std::string_view cond,
                         std::string_view file, int line, const std::string& msg) {
  std::ostringstream out;
  out << kind << " failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) {
    out << " — " << msg;
  }
  throw Error(out.str());
}

}  // namespace onesa::detail
