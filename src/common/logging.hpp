// Minimal leveled logger. Benchmarks and examples use INFO; the simulator
// emits TRACE-level per-cycle events that are off by default.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace onesa {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global log configuration. Thread-safe: the level is atomic (checked
/// lock-free on the hot path), each log line is composed off-lock and
/// emitted as a single sink write under one global mutex, so concurrent
/// serve-pool workers can never interleave partial lines.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Redirect the sink (nullptr restores std::cerr). The caller keeps the
  /// stream alive for the duration; used by tests to capture output.
  void set_sink(std::ostream* sink);

  void write(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::ostream* sink_ = nullptr;  // guarded by mutex_; nullptr = std::cerr
  std::mutex mutex_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace onesa

#define ONESA_LOG(level)                                        \
  if (!::onesa::Logger::instance().enabled(::onesa::LogLevel::level)) { \
  } else                                                        \
    ::onesa::detail::LogLine(::onesa::LogLevel::level)

#define ONESA_LOG_TRACE ONESA_LOG(kTrace)
#define ONESA_LOG_DEBUG ONESA_LOG(kDebug)
#define ONESA_LOG_INFO ONESA_LOG(kInfo)
#define ONESA_LOG_WARN ONESA_LOG(kWarn)
#define ONESA_LOG_ERROR ONESA_LOG(kError)
