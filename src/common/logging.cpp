#include "common/logging.hpp"

namespace onesa {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view msg) {
  if (!enabled(level)) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << msg << "\n";
}

}  // namespace onesa
