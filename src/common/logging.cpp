#include "common/logging.hpp"

namespace onesa {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, std::string_view msg) {
  if (!enabled(level)) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  // Compose the full line before taking the lock so the critical section is
  // one stream insertion — a concurrent writer can never split a line.
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += kNames[static_cast<int>(level)];
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  (sink_ ? *sink_ : std::cerr) << line;
}

}  // namespace onesa
