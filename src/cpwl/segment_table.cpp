#include "cpwl/segment_table.hpp"

#include <algorithm>
#include <cmath>
#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/error.hpp"

namespace onesa::cpwl {

namespace {

/// Exact power-of-two test returning the exponent e with g == 2^e, or
/// nullopt-like -1000 sentinel when g is not a power of two.
int power_of_two_exponent(double g) {
  int e = 0;
  const double mantissa = std::frexp(g, &e);  // g = mantissa * 2^e, mantissa in [0.5, 1)
  if (mantissa == 0.5) return e - 1;
  return -1000;
}

}  // namespace

SegmentTable SegmentTable::build(FunctionKind kind, const SegmentTableConfig& config) {
  SegmentTableConfig cfg = config;
  if (cfg.domain.lo == 0.0 && cfg.domain.hi == 0.0) {
    cfg.domain = default_domain(kind);
  }
  return build_custom(as_callable(kind), std::string(function_name(kind)), cfg);
}

SegmentTable SegmentTable::build_custom(const std::function<double(double)>& f,
                                        std::string name,
                                        const SegmentTableConfig& config) {
  ONESA_CHECK(config.granularity > 0.0, "granularity must be positive, got "
                                            << config.granularity);
  ONESA_CHECK(config.domain.hi > config.domain.lo,
              "empty CPWL domain [" << config.domain.lo << ", " << config.domain.hi << "]");
  ONESA_CHECK(config.frac_bits > 0 && config.frac_bits < 15,
              "invalid frac_bits " << config.frac_bits);

  SegmentTable t;
  t.name_ = std::move(name);
  t.granularity_ = config.granularity;
  t.domain_ = config.domain;
  t.frac_bits_ = config.frac_bits;

  const double g = config.granularity;
  t.min_segment_ = static_cast<int>(std::floor(config.domain.lo / g));
  t.max_segment_ = static_cast<int>(std::ceil(config.domain.hi / g)) - 1;
  t.max_segment_ = std::max(t.max_segment_, t.min_segment_);

  const int exp2 = power_of_two_exponent(g);
  t.pow2_granularity_ = exp2 != -1000;
  t.inv_granularity_ = 1.0 / g;  // exact when g is a power of two
  if (t.pow2_granularity_ && config.frac_bits + exp2 >= 0) {
    t.shift_amount_ = config.frac_bits + exp2;
  }

  const auto segments = static_cast<std::size_t>(t.max_segment_ - t.min_segment_ + 1);
  t.k_params_.reserve(segments);
  t.b_params_.reserve(segments);
  t.k_fixed_params_.reserve(segments);
  t.b_fixed_params_.reserve(segments);
  for (int s = t.min_segment_; s <= t.max_segment_; ++s) {
    // Endpoints of the segment, clipped to the domain so boundary segments
    // of functions with singular edges (e.g. 1/x near 0) stay finite.
    const double x0 = std::max(s * g, config.domain.lo);
    const double x1 = std::min((s + 1) * g, config.domain.hi);
    ONESA_CHECK(x1 > x0, "degenerate segment " << s << " for " << t.name_);
    const double y0 = f(x0);
    const double y1 = f(x1);
    const double k = (y1 - y0) / (x1 - x0);
    const double b = y0 - k * x0;
    t.k_params_.push_back(k);
    t.b_params_.push_back(b);
    t.k_fixed_params_.push_back(fixed::Fix16::from_double(k));
    t.b_fixed_params_.push_back(fixed::Fix16::from_double(b));
    t.kb_packed_.push_back(
        static_cast<std::int32_t>(
            static_cast<std::uint16_t>(t.k_fixed_params_.back().raw())) |
        (static_cast<std::int32_t>(t.b_fixed_params_.back().raw()) << 16));
  }
  return t;
}

int SegmentTable::raw_segment(double x) const {
  return static_cast<int>(std::floor(x / granularity_));
}

int SegmentTable::segment_index(double x) const {
  return std::clamp(raw_segment(x), min_segment_, max_segment_);
}

int SegmentTable::segment_index_raw(std::int16_t raw) const {
  int s;
  if (shift_indexable()) {
    // Arithmetic right shift == floor division by 2^shift (two's complement,
    // guaranteed by C++20) — the single-shift hardware path.
    s = static_cast<int>(raw) >> shift_amount_;
  } else {
    s = raw_segment(static_cast<double>(raw) /
                    static_cast<double>(std::int32_t{1} << frac_bits_));
  }
  return std::clamp(s, min_segment_, max_segment_);  // the "scale module" cap
}

std::size_t SegmentTable::relative_index(int segment) const {
  ONESA_DCHECK(segment >= min_segment_ && segment <= max_segment_,
               "segment " << segment << " outside [" << min_segment_ << ", "
                          << max_segment_ << "]");
  return static_cast<std::size_t>(segment - min_segment_);
}

double SegmentTable::k(int segment) const { return k_params_[relative_index(segment)]; }
double SegmentTable::b(int segment) const { return b_params_[relative_index(segment)]; }

fixed::Fix16 SegmentTable::k_fixed(int segment) const {
  return k_fixed_params_[relative_index(segment)];
}
fixed::Fix16 SegmentTable::b_fixed(int segment) const {
  return b_fixed_params_[relative_index(segment)];
}

int SegmentTable::grid_segment(double x) const {
  // Multiplying by the reciprocal is exact for power-of-two granularities
  // (both are pure exponent scalings), so this matches raw_segment()'s
  // divide bit-for-bit there; other granularities keep the divide.
  const double t = pow2_granularity_ ? x * inv_granularity_ : x / granularity_;
  // Branch-free floor-to-int (t is finite and well inside int range for any
  // in-domain input: the domain is bounded and g >= one INT16 ulp).
  int s = static_cast<int>(t);
  s -= static_cast<double>(s) > t;
  return s;
}

double SegmentTable::eval(double x) const {
  int s = grid_segment(x);
  s = s < min_segment_ ? min_segment_ : s;
  s = s > max_segment_ ? max_segment_ : s;
  const std::size_t i = static_cast<std::size_t>(s - min_segment_);
  return k_params_[i] * x + b_params_[i];
}

fixed::Fix16 SegmentTable::eval_fixed(fixed::Fix16 x) const {
  const std::size_t i = relative_index(segment_index_raw(x.raw()));
  fixed::Acc16 acc;
  acc.mac(k_fixed_params_[i], x);
  acc.mac(fixed::Fix16::from_double(1.0), b_fixed_params_[i]);
  return acc.result();
}

void SegmentTable::eval_batch(std::span<const double> x, std::span<double> y) const {
  ONESA_CHECK(x.size() == y.size(),
              "eval_batch spans differ: " << x.size() << " vs " << y.size());
  const int lo = min_segment_;
  const int hi = max_segment_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    int s = grid_segment(x[i]);
    s = s < lo ? lo : s;
    s = s > hi ? hi : s;
    const std::size_t idx = static_cast<std::size_t>(s - lo);
    y[i] = k_params_[idx] * x[i] + b_params_[idx];
  }
}

#if defined(__x86_64__)
/// Sixteen shift-indexed CPWL lanes per iteration, bit-exact with the scalar
/// path: every intermediate fits int32 (|k*x| <= 2^30, |b << frac_bits| <=
/// 2^29, rounding constant <= 2^13), so 32-bit lanes reproduce Acc16's
/// 64-bit accumulate exactly, and the saturating int32->int16 downconvert is
/// Acc16::result()'s saturate_i16. Needs only avx512f, but gated on
/// avx512bw to match the INT16 GEMM dispatch tier.
// gcc 12's avx512fintrin.h trips -Wmaybe-uninitialized on the non-masked
// intrinsic forms (header-internal `__Y`, a known false positive — same one
// suppressed around gemm.cpp's store_tile_avx512_8x16); scope the
// suppression to this one function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f"))) static std::size_t eval_fixed_shift_avx512(
    const std::int16_t* x, std::int16_t* y, std::size_t len, int shift, int frac_bits,
    int lo, int hi, const std::int32_t* kb) {
  const __m512i vlo = _mm512_set1_epi32(lo);
  const __m512i vhi = _mm512_set1_epi32(hi);
  const __m512i vround = _mm512_set1_epi32(1 << (frac_bits - 1));
  const __m128i vshift = _mm_cvtsi32_si128(shift);
  const __m128i vfrac = _mm_cvtsi32_si128(frac_bits);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m256i raw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m512i xw = _mm512_cvtepi16_epi32(raw);           // sign-extend
    __m512i s = _mm512_sra_epi32(xw, vshift);                // segment index
    s = _mm512_min_epi32(_mm512_max_epi32(s, vlo), vhi);     // scale-module cap
    const __m512i idx = _mm512_sub_epi32(s, vlo);
    const __m512i kb32 = _mm512_i32gather_epi32(idx, kb, 4);  // k lo16, b hi16
    const __m512i k = _mm512_srai_epi32(_mm512_slli_epi32(kb32, 16), 16);
    const __m512i b = _mm512_srai_epi32(kb32, 16);
    __m512i acc = _mm512_mullo_epi32(k, xw);                 // k*x
    acc = _mm512_add_epi32(acc, _mm512_sll_epi32(b, vfrac)); // + one.raw * b
    acc = _mm512_add_epi32(acc, vround);
    acc = _mm512_sra_epi32(acc, vfrac);                      // Acc16::result()
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm512_cvtsepi32_epi16(acc));        // saturate_i16
  }
  return i;
}
#pragma GCC diagnostic pop
#endif  // __x86_64__

void SegmentTable::eval_fixed_batch(std::span<const fixed::Fix16> x,
                                    std::span<fixed::Fix16> y) const {
  ONESA_CHECK(x.size() == y.size(),
              "eval_fixed_batch spans differ: " << x.size() << " vs " << y.size());
  const auto one = fixed::Fix16::from_double(1.0);
  const int lo = min_segment_;
  const int hi = max_segment_;
  if (shift_indexable()) {
    const int shift = shift_amount_;
    std::size_t i = 0;
#if defined(__x86_64__)
    // Fix16 is a standard-layout wrapper over one int16_t, so its array is
    // byte-compatible with an int16_t array (the raw view the hardware
    // datapath works on anyway).
    static_assert(sizeof(fixed::Fix16) == sizeof(std::int16_t));
    static const bool kVector = __builtin_cpu_supports("avx512bw");
    if (kVector) {
      // The accumulate/requantize stage always runs at Acc16's frac bits
      // (kDefaultFracBits), matching the scalar loop below; only the segment
      // shift depends on the table's own frac_bits.
      i = eval_fixed_shift_avx512(reinterpret_cast<const std::int16_t*>(x.data()),
                                  reinterpret_cast<std::int16_t*>(y.data()), x.size(),
                                  shift, fixed::kDefaultFracBits, lo, hi,
                                  kb_packed_.data());
    }
#endif
    for (; i < x.size(); ++i) {
      int s = static_cast<int>(x[i].raw()) >> shift;
      s = s < lo ? lo : s;
      s = s > hi ? hi : s;
      const std::size_t idx = static_cast<std::size_t>(s - lo);
      fixed::Acc16 acc;
      acc.mac(k_fixed_params_[idx], x[i]);
      acc.mac(one, b_fixed_params_[idx]);
      y[i] = acc.result();
    }
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = eval_fixed(x[i]);
}

SegmentTable::CapCounts SegmentTable::lookup_fixed_batch(
    std::span<const fixed::Fix16> x, std::span<fixed::Fix16> segment,
    std::span<fixed::Fix16> k, std::span<fixed::Fix16> b) const {
  ONESA_CHECK(segment.size() == x.size() && k.size() == x.size() && b.size() == x.size(),
              "lookup_fixed_batch spans must match the input length " << x.size());
  CapCounts caps;
  const int lo = min_segment_;
  const int hi = max_segment_;
  const bool shifted = shift_indexable();
  const int shift = shift_amount_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int uncapped = shifted
                             ? static_cast<int>(x[i].raw()) >> shift
                             : raw_segment(static_cast<double>(x[i].raw()) /
                                           static_cast<double>(std::int32_t{1} << frac_bits_));
    int s = uncapped;
    if (s < lo) {
      s = lo;
      ++caps.low;
    } else if (s > hi) {
      s = hi;
      ++caps.high;
    }
    const std::size_t idx = static_cast<std::size_t>(s - lo);
    segment[i] = fixed::Fix16::from_raw(static_cast<std::int16_t>(s));
    k[i] = k_fixed_params_[idx];
    b[i] = b_fixed_params_[idx];
  }
  return caps;
}

TableSet::TableSet(double granularity, int frac_bits)
    : TableSet(granularity, {}, frac_bits) {}

TableSet::TableSet(double default_granularity,
                   const std::vector<std::pair<FunctionKind, double>>& overrides,
                   int frac_bits)
    : granularity_(default_granularity) {
  for (FunctionKind kind : all_functions()) {
    SegmentTableConfig cfg;
    cfg.granularity = default_granularity;
    for (const auto& [fn, g] : overrides) {
      if (fn == kind) cfg.granularity = g;
    }
    cfg.frac_bits = frac_bits;
    tables_.push_back(SegmentTable::build(kind, cfg));
  }
}

const SegmentTable& TableSet::get(FunctionKind kind) const {
  const auto idx = static_cast<std::size_t>(kind);
  ONESA_CHECK(idx < tables_.size(), "FunctionKind out of range");
  return tables_[idx];
}

std::size_t TableSet::total_table_bytes() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.table_bytes();
  return total;
}

}  // namespace onesa::cpwl
