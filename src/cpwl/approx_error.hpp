// Approximation-error analysis for CPWL tables.
//
// Used by the accuracy experiments (Table III) to relate granularity to
// error, and by the property tests to assert the theoretical error bound
// (for a C^2 function, max segment error <= g^2/8 * max|f''|).
#pragma once

#include <string>
#include <vector>

#include "cpwl/segment_table.hpp"

namespace onesa::cpwl {

/// Error statistics of a table against its reference function over a grid.
struct ErrorReport {
  std::string function;
  double granularity = 0.0;
  double max_abs_error = 0.0;   // max |cpwl(x) - f(x)| over the domain
  double mean_abs_error = 0.0;  // mean over the grid
  double max_rel_error = 0.0;   // max relative error where |f(x)| > eps
  std::size_t table_bytes = 0;
};

/// Measure a table against an arbitrary reference over [domain] with
/// `samples` evenly spaced points (endpoints included).
ErrorReport measure_error(const SegmentTable& table,
                          const std::function<double(double)>& reference,
                          std::size_t samples = 4096);

/// Measure a catalog function's table against its exact reference.
ErrorReport measure_error(FunctionKind kind, const SegmentTable& table,
                          std::size_t samples = 4096);

/// Sweep granularities for one function; returns one report per granularity.
std::vector<ErrorReport> granularity_sweep(FunctionKind kind,
                                           const std::vector<double>& granularities,
                                           std::size_t samples = 4096);

/// Smallest power-of-two granularity (within [2^-frac_bits, 1]) whose max
/// absolute error is below `tolerance`. Throws ConfigError if none qualifies.
double choose_granularity(FunctionKind kind, double tolerance,
                          int frac_bits = fixed::kDefaultFracBits);

}  // namespace onesa::cpwl
