// Capped piecewise linearization (CPWL) segment tables — the core
// approximation mechanism of ONE-SA (§III-A, Fig. 3).
//
// A nonlinear function y = f(x) is cut into segments of length g (the
// *granularity*). Per segment s the line y = k_s * x + b_s connects the
// segment's endpoints on the curve. Segment numbers are *absolute*:
// s = floor(x / g), so when g is a power of two the hardware computes s with
// a single arithmetic right shift of the INT16 raw value — exactly the
// "data shift module" of the L3 DataAddressing unit (§IV-A-1). Out-of-range
// segment numbers are *capped* to the boundary segments ("scale module"),
// whose lines extend naturally beyond the domain.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cpwl/functions.hpp"
#include "fixed/fixed16.hpp"

namespace onesa::cpwl {

/// Build-time options for a segment table.
struct SegmentTableConfig {
  /// Segment length. The paper sweeps 0.1 .. 1.0 (Table III) and uses 0.25 as
  /// the default; powers of two enable the shift-based hardware indexer.
  double granularity = 0.25;
  /// Approximation domain; defaults to default_domain(kind) when unset
  /// (lo == hi == 0).
  Domain domain = {0.0, 0.0};
  /// Fractional bits of the INT16 fixed-point format the table serves.
  int frac_bits = fixed::kDefaultFracBits;
};

/// An immutable CPWL table for one scalar function: per-segment (k, b) in
/// both double and INT16, plus the two indexing paths (algorithmic divide
/// and hardware shift).
class SegmentTable {
 public:
  /// Build the table for a catalog function.
  static SegmentTable build(FunctionKind kind, const SegmentTableConfig& config = {});

  /// Build for an arbitrary callable (the "one-size-fits-all" promise: any
  /// scalar nonlinearity becomes a table).
  static SegmentTable build_custom(const std::function<double(double)>& f,
                                   std::string name, const SegmentTableConfig& config);

  // ------------------------------------------------------------- indexing

  /// Absolute (uncapped) segment number floor(x / g).
  int raw_segment(double x) const;

  /// Capped segment number: clamp(raw_segment(x), min_segment, max_segment).
  int segment_index(double x) const;

  /// True when the granularity is an exact power of two and at least one
  /// INT16 ulp, i.e. the hardware shift indexer applies.
  bool shift_indexable() const { return shift_amount_ >= 0; }

  /// Right-shift amount used by the hardware indexer (frac_bits + log2(g)).
  int shift_amount() const { return shift_amount_; }

  /// Hardware indexing path: arithmetic shift of the INT16 raw value, then
  /// cap. Falls back to the divide path when not shift-indexable.
  int segment_index_raw(std::int16_t raw) const;

  /// 0-based offset into the preloaded k/b buffers (segment - min_segment),
  /// the address the L3 "scale module" emits.
  std::size_t relative_index(int segment) const;

  // ------------------------------------------------------------ parameters

  double k(int segment) const;
  double b(int segment) const;
  fixed::Fix16 k_fixed(int segment) const;
  fixed::Fix16 b_fixed(int segment) const;

  // ------------------------------------------------------------ evaluation

  /// Double-precision CPWL evaluation (algorithmic model).
  double eval(double x) const;

  /// Full INT16 datapath: shift-index the raw input, fetch INT16 (k, b),
  /// compute k*x + b in one wide accumulation — bit-exact with what the
  /// simulated IPF + MHP pipeline produces.
  fixed::Fix16 eval_fixed(fixed::Fix16 x) const;

  // -------------------------------------------------------- batch evaluation
  //
  // O(1) uniform-grid lookups over the flat SoA parameter arrays: the index
  // is one multiply (power-of-two granularities use the exact reciprocal —
  // the same value a divide would produce) + floor + clamp, with no
  // per-element function calls or AoS pointer chasing. Identical results to
  // the scalar paths, element for element.

  /// y[i] = eval(x[i]). Spans must have equal length.
  void eval_batch(std::span<const double> x, std::span<double> y) const;

  /// y[i] = eval_fixed(x[i]), bit-exact. Spans must have equal length.
  void eval_fixed_batch(std::span<const fixed::Fix16> x,
                        std::span<fixed::Fix16> y) const;

  /// Cap counters of one batched lookup (the L3 scale-module statistics).
  struct CapCounts {
    std::uint64_t low = 0;
    std::uint64_t high = 0;
  };

  /// The IPF fetch as one batched pass: for every raw INT16 input write the
  /// capped segment number (as raw INT16), the fetched INT16 slope and the
  /// intercept. Returns how many inputs capped at each boundary. This is the
  /// lookup DataAddressing streams per element; batching it keeps the
  /// accelerator's nonlinear pass on the flat-array fast path.
  CapCounts lookup_fixed_batch(std::span<const fixed::Fix16> x,
                               std::span<fixed::Fix16> segment,
                               std::span<fixed::Fix16> k,
                               std::span<fixed::Fix16> b) const;

  // -------------------------------------------------------------- metadata

  int min_segment() const { return min_segment_; }
  int max_segment() const { return max_segment_; }
  std::size_t segment_count() const { return k_params_.size(); }

  /// Bytes of L3 storage the preloaded table occupies: 2 INT16 params per
  /// segment. This is what bounds the practical granularity (§V-B: "the
  /// approximation granularity is limited by the size of the L3 buffer").
  std::size_t table_bytes() const { return segment_count() * 2 * sizeof(std::int16_t); }

  double granularity() const { return granularity_; }
  Domain domain() const { return domain_; }
  int frac_bits() const { return frac_bits_; }
  const std::string& name() const { return name_; }

 private:
  SegmentTable() = default;

  /// Uncapped segment of x using the batch indexer (multiply by the exact
  /// reciprocal for power-of-two granularities, divide otherwise).
  int grid_segment(double x) const;

  std::string name_;
  double granularity_ = 0.25;
  double inv_granularity_ = 4.0;     // exact for power-of-two granularities
  bool pow2_granularity_ = false;
  Domain domain_{0.0, 0.0};
  int frac_bits_ = fixed::kDefaultFracBits;
  int min_segment_ = 0;
  int max_segment_ = 0;
  int shift_amount_ = -1;  // -1 => divide path only

  // Per-segment parameters as flat structure-of-arrays (segment - min_segment
  // indexes all four): the batch evaluators stream k/b with unit stride.
  std::vector<double> k_params_;
  std::vector<double> b_params_;
  std::vector<fixed::Fix16> k_fixed_params_;
  std::vector<fixed::Fix16> b_fixed_params_;
  // (k, b) raw pairs packed one int32 per segment (k low half, b high half):
  // the vectorized eval_fixed_batch fetches both params of a lane with a
  // single 32-bit gather instead of two 16-bit loads.
  std::vector<std::int32_t> kb_packed_;
};

/// Bundle of tables for every function a network needs, built once per
/// granularity setting and shared by the accelerator.
class TableSet {
 public:
  explicit TableSet(double granularity = 0.25, int frac_bits = fixed::kDefaultFracBits);

  /// Mixed-granularity construction: `overrides` assigns specific functions
  /// their own granularity (e.g. a finer table for exp, whose error feeds
  /// softmax rankings, and a coarser one for the forgiving activations —
  /// the per-function selection the paper's NAS remark points at; pair with
  /// train::tune_granularity to pick the values).
  TableSet(double default_granularity,
           const std::vector<std::pair<FunctionKind, double>>& overrides,
           int frac_bits = fixed::kDefaultFracBits);

  const SegmentTable& get(FunctionKind kind) const;
  /// Default granularity (individual tables may differ under overrides).
  double granularity() const { return granularity_; }

  /// Total L3 bytes across all preloaded tables.
  std::size_t total_table_bytes() const;

 private:
  double granularity_;
  std::vector<SegmentTable> tables_;  // indexed by FunctionKind order
};

}  // namespace onesa::cpwl
