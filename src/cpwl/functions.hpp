// Catalog of nonlinear scalar functions the accelerator must support, with
// double-precision reference implementations.
//
// The paper demonstrates CPWL on GELU (Fig. 3) and states the same process
// handles Softmax and LayerNorm. Decomposed onto the array, those need the
// auxiliary scalar functions exp, 1/x and 1/sqrt(x); we also provide the
// activations used by the three evaluated model families (ReLU-family for
// ResNet, GELU/exp for BERT, plus tanh/sigmoid/softplus/SiLU for coverage of
// "a wide range of nonlinear computations", §I).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace onesa::cpwl {

enum class FunctionKind {
  kGelu,        // x * Phi(x), the BERT activation
  kExp,         // e^x, Softmax numerator
  kReciprocal,  // 1/x on (0, inf), Softmax denominator
  kRsqrt,       // 1/sqrt(x) on (0, inf), LayerNorm/BatchNorm normalizer
  kSqrt,        // sqrt(x) on [0, inf)
  kTanh,
  kSigmoid,
  kErf,
  kSoftplus,    // ln(1 + e^x)
  kSilu,        // x * sigmoid(x)
  kRelu,        // already piecewise-linear; CPWL is exact
  kLeakyRelu,   // slope 0.01 for x < 0
};

/// All catalog functions, for sweeps.
std::vector<FunctionKind> all_functions();

/// Human-readable name ("gelu", "exp", ...).
std::string_view function_name(FunctionKind kind);

/// Exact double-precision value f(x).
double eval_reference(FunctionKind kind, double x);

/// Default uncapped approximation domain [lo, hi] for each function.
/// Outside the domain the CPWL table *caps* to the boundary segment, whose
/// line extends naturally (e.g. GELU -> identity for large x, -> 0 for very
/// negative x), matching the paper's capping rule in Fig. 3.
struct Domain {
  double lo;
  double hi;
};
Domain default_domain(FunctionKind kind);

/// True if the function is only defined (or only used) on positive inputs,
/// e.g. the reciprocal fed by a Softmax partition sum.
bool positive_only(FunctionKind kind);

/// Wrap a catalog function as a std::function for the custom-table builder.
std::function<double(double)> as_callable(FunctionKind kind);

}  // namespace onesa::cpwl
