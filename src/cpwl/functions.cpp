#include "cpwl/functions.hpp"

#include <cmath>

#include "common/error.hpp"

namespace onesa::cpwl {

std::vector<FunctionKind> all_functions() {
  return {FunctionKind::kGelu,     FunctionKind::kExp,      FunctionKind::kReciprocal,
          FunctionKind::kRsqrt,    FunctionKind::kSqrt,     FunctionKind::kTanh,
          FunctionKind::kSigmoid,  FunctionKind::kErf,      FunctionKind::kSoftplus,
          FunctionKind::kSilu,     FunctionKind::kRelu,     FunctionKind::kLeakyRelu};
}

std::string_view function_name(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kGelu: return "gelu";
    case FunctionKind::kExp: return "exp";
    case FunctionKind::kReciprocal: return "reciprocal";
    case FunctionKind::kRsqrt: return "rsqrt";
    case FunctionKind::kSqrt: return "sqrt";
    case FunctionKind::kTanh: return "tanh";
    case FunctionKind::kSigmoid: return "sigmoid";
    case FunctionKind::kErf: return "erf";
    case FunctionKind::kSoftplus: return "softplus";
    case FunctionKind::kSilu: return "silu";
    case FunctionKind::kRelu: return "relu";
    case FunctionKind::kLeakyRelu: return "leaky_relu";
  }
  throw Error("unknown FunctionKind");
}

double eval_reference(FunctionKind kind, double x) {
  switch (kind) {
    case FunctionKind::kGelu:
      // Exact GELU via the Gauss error function: x * Phi(x).
      return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
    case FunctionKind::kExp:
      return std::exp(x);
    case FunctionKind::kReciprocal:
      ONESA_CHECK(x != 0.0, "reciprocal of zero");
      return 1.0 / x;
    case FunctionKind::kRsqrt:
      ONESA_CHECK(x > 0.0, "rsqrt of non-positive " << x);
      return 1.0 / std::sqrt(x);
    case FunctionKind::kSqrt:
      ONESA_CHECK(x >= 0.0, "sqrt of negative " << x);
      return std::sqrt(x);
    case FunctionKind::kTanh:
      return std::tanh(x);
    case FunctionKind::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case FunctionKind::kErf:
      return std::erf(x);
    case FunctionKind::kSoftplus:
      // Numerically stable ln(1+e^x).
      return x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
    case FunctionKind::kSilu:
      return x / (1.0 + std::exp(-x));
    case FunctionKind::kRelu:
      return x > 0.0 ? x : 0.0;
    case FunctionKind::kLeakyRelu:
      return x > 0.0 ? x : 0.01 * x;
  }
  throw Error("unknown FunctionKind");
}

Domain default_domain(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kGelu: return {-8.0, 8.0};
    // Softmax subtracts the row max before exponentiation, so exp only ever
    // sees non-positive inputs; e^-16 is already below INT16 resolution.
    case FunctionKind::kExp: return {-16.0, 0.0};
    // The reciprocal feeds on Softmax partition sums, which are >= 1 after
    // the max subtraction (the max element contributes exp(0) = 1). Starting
    // the domain at 0.5 keeps the piecewise-linear slopes representable in
    // Q6.9 — 1/x below 0.5 is too steep for INT16 slopes.
    case FunctionKind::kReciprocal: return {0.5, 32.0};
    case FunctionKind::kRsqrt: return {0.0625, 32.0};
    case FunctionKind::kSqrt: return {0.0, 32.0};
    case FunctionKind::kTanh: return {-4.0, 4.0};
    case FunctionKind::kSigmoid: return {-8.0, 8.0};
    case FunctionKind::kErf: return {-4.0, 4.0};
    case FunctionKind::kSoftplus: return {-8.0, 8.0};
    case FunctionKind::kSilu: return {-8.0, 8.0};
    case FunctionKind::kRelu: return {-8.0, 8.0};
    case FunctionKind::kLeakyRelu: return {-8.0, 8.0};
  }
  throw Error("unknown FunctionKind");
}

bool positive_only(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kReciprocal:
    case FunctionKind::kRsqrt:
    case FunctionKind::kSqrt:
      return true;
    default:
      return false;
  }
}

std::function<double(double)> as_callable(FunctionKind kind) {
  return [kind](double x) { return eval_reference(kind, x); };
}

}  // namespace onesa::cpwl
