#include "cpwl/approx_error.hpp"

#include <cmath>

#include "common/error.hpp"

namespace onesa::cpwl {

ErrorReport measure_error(const SegmentTable& table,
                          const std::function<double(double)>& reference,
                          std::size_t samples) {
  ONESA_CHECK(samples >= 2, "need at least 2 samples");
  ErrorReport report;
  report.function = table.name();
  report.granularity = table.granularity();
  report.table_bytes = table.table_bytes();

  const Domain d = table.domain();
  const double step = (d.hi - d.lo) / static_cast<double>(samples - 1);
  double sum = 0.0;
  constexpr double kRelEps = 1e-6;
  for (std::size_t i = 0; i < samples; ++i) {
    const double x = d.lo + step * static_cast<double>(i);
    const double approx = table.eval(x);
    const double exact = reference(x);
    const double err = std::abs(approx - exact);
    report.max_abs_error = std::max(report.max_abs_error, err);
    sum += err;
    if (std::abs(exact) > kRelEps) {
      report.max_rel_error = std::max(report.max_rel_error, err / std::abs(exact));
    }
  }
  report.mean_abs_error = sum / static_cast<double>(samples);
  return report;
}

ErrorReport measure_error(FunctionKind kind, const SegmentTable& table,
                          std::size_t samples) {
  return measure_error(table, as_callable(kind), samples);
}

std::vector<ErrorReport> granularity_sweep(FunctionKind kind,
                                           const std::vector<double>& granularities,
                                           std::size_t samples) {
  std::vector<ErrorReport> reports;
  reports.reserve(granularities.size());
  for (double g : granularities) {
    SegmentTableConfig cfg;
    cfg.granularity = g;
    reports.push_back(measure_error(kind, SegmentTable::build(kind, cfg), samples));
  }
  return reports;
}

double choose_granularity(FunctionKind kind, double tolerance, int frac_bits) {
  for (double g = 1.0; g >= 1.0 / static_cast<double>(std::int32_t{1} << frac_bits);
       g /= 2.0) {
    SegmentTableConfig cfg;
    cfg.granularity = g;
    cfg.frac_bits = frac_bits;
    const auto report = measure_error(kind, SegmentTable::build(kind, cfg));
    if (report.max_abs_error <= tolerance) return g;
  }
  throw ConfigError("no power-of-two granularity meets tolerance " +
                    std::to_string(tolerance) + " for " +
                    std::string(function_name(kind)));
}

}  // namespace onesa::cpwl
