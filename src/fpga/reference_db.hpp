// Published reference rows of Table IV.
//
// The paper compares ONE-SA against measured general-purpose processors and
// *published* FPGA accelerator results; it does not re-implement them. We do
// the same: these rows are documented constants transcribed from Table IV
// (latency in ms, speedup vs. the CPU baseline, throughput in GOPS, power in
// W, efficiency in GOPS/W). Our benchmark recomputes the ONE-SA row from the
// simulator + power model and derives all relative metrics.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace onesa::fpga {

/// Which workload a measurement refers to.
enum class Workload { kResNet50, kBertBase, kGcn };

std::string workload_name(Workload w);

/// One processor x workload measurement from Table IV.
struct ReferenceEntry {
  std::string processor;   // e.g. "Intel CPU i7-11700"
  std::string spec;        // device / design name
  int tech_nm = 0;         // technology node
  Workload workload = Workload::kResNet50;
  double latency_ms = 0.0;
  double throughput_gops = 0.0;
  double power_watts = 0.0;

  double efficiency() const { return throughput_gops / power_watts; }
};

/// All published rows (CPU, GPU, SoC and the four application-specific FPGA
/// accelerators). The ONE-SA row is *not* included — it is recomputed.
const std::vector<ReferenceEntry>& reference_table();

/// The CPU baseline entry for a workload (speedups are relative to it).
const ReferenceEntry& cpu_baseline(Workload w);

/// Entries for one workload, in the paper's row order.
std::vector<ReferenceEntry> references_for(Workload w);

}  // namespace onesa::fpga
