// XPE-style FPGA power model.
//
// The paper reports power from the Xilinx Power Estimator (XPE), which
// composes device static power with per-resource-class dynamic power
// proportional to clock frequency. We use the same structure with
// per-resource coefficients in the typical Virtex-7 range, scaled so that
// the paper's reference design (ONE-SA, 8x8 PEs, 16 MACs, 200 MHz) lands on
// its published 7.61 W (Table IV). The test suite pins that calibration.
#pragma once

#include "fpga/resource_model.hpp"

namespace onesa::fpga {

struct PowerBreakdown {
  double static_watts = 0.0;
  double lut_watts = 0.0;
  double ff_watts = 0.0;
  double dsp_watts = 0.0;
  double bram_watts = 0.0;
  double total() const {
    return static_watts + lut_watts + ff_watts + dsp_watts + bram_watts;
  }
};

class PowerModel {
 public:
  PowerModel() = default;

  /// Power of a design with the given resource usage at `clock_mhz`.
  PowerBreakdown estimate(const ResourceVector& resources, double clock_mhz) const;

  /// Convenience: watts only.
  double watts(const ResourceVector& resources, double clock_mhz) const {
    return estimate(resources, clock_mhz).total();
  }

  /// Energy (joules) for an operation of `seconds` duration.
  double energy_joules(const ResourceVector& resources, double clock_mhz,
                       double seconds) const {
    return watts(resources, clock_mhz) * seconds;
  }
};

}  // namespace onesa::fpga
