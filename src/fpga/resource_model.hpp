// Analytic FPGA resource model, calibrated against the paper's synthesis
// results on the Virtex-7 XC7VX485T.
//
// Calibration anchors (verified by tests/test_resource_model.cpp):
//   * Table I  — per-module BRAM/LUT/FF/DSP of the L3 buffer and the PE,
//                for both the conventional SA and ONE-SA (16 MACs).
//   * Table II — total resources of the 4x4, 8x8 and 16x16 arrays
//                (16 MACs per PE). The ONE-SA deltas in Table II are exactly
//                Table I's module deltas (L3 delta + per-PE delta x PEs);
//                this model reproduces them identically. The SA base totals
//                include HLS interconnect/control that is not attributable
//                to any Table I module; we absorb it into an `infrastructure`
//                term interpolated through the three published design points
//                (piecewise-linear in log2(#PEs), clamped extrapolation).
//
// MAC-count scaling (Fig. 9):
//   * DSP  = 1 per MAC lane (exact at the 16-MAC anchor).
//   * FF   grows with lanes (pipeline registers): noticeable growth.
//   * LUT  grows marginally with lanes.
//   * BRAM is independent of lanes.
// These slopes reproduce the qualitative findings of §V-C: "an increase in
// the number of MACs leads to higher throughput while incurring a relatively
// smaller resource overhead".
#pragma once

#include <cstdint>
#include <string>

#include "sim/array.hpp"

namespace onesa::fpga {

/// FPGA resource counts (the four columns of Tables I/II).
struct ResourceVector {
  double bram = 0.0;
  double lut = 0.0;
  double ff = 0.0;
  double dsp = 0.0;

  ResourceVector& operator+=(const ResourceVector& o) {
    bram += o.bram;
    lut += o.lut;
    ff += o.ff;
    dsp += o.dsp;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    return a += b;
  }
  friend ResourceVector operator*(ResourceVector a, double s) {
    a.bram *= s;
    a.lut *= s;
    a.ff *= s;
    a.dsp *= s;
    return a;
  }
};

/// Which architecture a module/design belongs to.
enum class Design { kConventionalSa, kOneSa };

/// Resources of one processing element with `macs` MAC lanes.
ResourceVector pe_resources(Design design, std::size_t macs);

/// Resources of one L3 buffer. Only ONE-SA's *output* L3 carries the IPF
/// data-addressing logic; its input/weight L3s match the conventional ones.
ResourceVector l3_resources(Design design, bool output_buffer);

/// HLS interconnect/control not attributable to Table I modules, obtained by
/// interpolating the paper's three published totals in log2(#PEs).
ResourceVector infrastructure(std::size_t pe_count);

/// Total resources of an array configuration (Table II / Fig. 9).
ResourceVector total_resources(Design design, const sim::ArrayConfig& config);

}  // namespace onesa::fpga
