#include "fpga/reference_db.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace onesa::fpga {

std::string workload_name(Workload w) {
  switch (w) {
    case Workload::kResNet50: return "ResNet-50";
    case Workload::kBertBase: return "BERT-base";
    case Workload::kGcn: return "GCN";
  }
  throw Error("unknown Workload");
}

const std::vector<ReferenceEntry>& reference_table() {
  // Transcribed from Table IV of the paper (latency L in ms, throughput T in
  // GOPS, power P in W). Missing cells in the paper (accelerators evaluated
  // on one network only) are simply absent here.
  static const std::vector<ReferenceEntry> kTable = {
      // Intel CPU i7-11700, 14 nm.
      {"Intel CPU", "i7-11700", 14, Workload::kResNet50, 42.51, 93.51, 112.0},
      {"Intel CPU", "i7-11700", 14, Workload::kBertBase, 45.92, 119.77, 112.0},
      {"Intel CPU", "i7-11700", 14, Workload::kGcn, 34.12, 33.99, 112.0},
      // NVIDIA GPU 3090Ti, 8 nm.
      {"NVIDIA GPU", "3090Ti", 8, Workload::kResNet50, 6.27, 633.99, 131.0},
      {"NVIDIA GPU", "3090Ti", 8, Workload::kBertBase, 7.95, 691.81, 131.0},
      {"NVIDIA GPU", "3090Ti", 8, Workload::kGcn, 1.56, 743.45, 131.0},
      // NVIDIA SoC AGX Orin, 12 nm.
      {"NVIDIA SoC", "AGX ORIN", 12, Workload::kResNet50, 16.20, 245.38, 14.0},
      {"NVIDIA SoC", "AGX ORIN", 12, Workload::kBertBase, 21.52, 255.57, 14.0},
      {"NVIDIA SoC", "AGX ORIN", 12, Workload::kGcn, 4.92, 235.73, 14.0},
      // Application-specific FPGA accelerators (published designs).
      {"Zynq Z-7020", "Angel-eye", 28, Workload::kResNet50, 47.15, 84.3, 3.5},
      {"Virtex7", "VGG16", 28, Workload::kResNet50, 19.64, 202.42, 10.81},
      {"Zynq Z-7100", "NPE", 28, Workload::kBertBase, 13.57, 405.30, 20.0},
      {"Virtex UltraScale+", "FTRANS", 16, Workload::kBertBase, 9.82, 559.85, 25.0},
  };
  return kTable;
}

const ReferenceEntry& cpu_baseline(Workload w) {
  for (const auto& e : reference_table()) {
    if (e.processor == "Intel CPU" && e.workload == w) return e;
  }
  throw Error("no CPU baseline for workload");
}

std::vector<ReferenceEntry> references_for(Workload w) {
  std::vector<ReferenceEntry> out;
  std::copy_if(reference_table().begin(), reference_table().end(),
               std::back_inserter(out),
               [w](const ReferenceEntry& e) { return e.workload == w; });
  return out;
}

}  // namespace onesa::fpga
