#include "fpga/resource_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace onesa::fpga {

namespace {

// ------------------------- Table I anchors (16-MAC PE, Virtex-7 synthesis)

constexpr double kPeBram = 1.0;
constexpr double kPeDspPerMac = 1.0;

// PE LUT = base + per-lane slope; anchored at 824 LUTs @ 16 MACs with a
// "marginal" lane slope (Fig. 9a finding).
constexpr double kPeLutPerMac = 8.0;
constexpr double kPeLutBase = 824.0 - kPeLutPerMac * 16.0;  // 696

// PE FF = base + per-lane pipeline registers; anchored at 1862 @ 16 MACs.
constexpr double kPeFfPerMac = 58.0;
constexpr double kPeFfBase = 1862.0 - kPeFfPerMac * 16.0;  // 934

// ONE-SA additions per PE: control logics C1/C2 (+2 LUTs) and the MHP
// forwarding/latch registers, 32 FFs per lane + 6 control FFs. At 16 MACs
// this is exactly Table I's +518 FF delta (2380 - 1862).
constexpr double kOneSaPeLutDelta = 2.0;
constexpr double kOneSaPeFfPerMac = 32.0;
constexpr double kOneSaPeFfConst = 6.0;

// L3 buffer (Table I): conventional vs ONE-SA output buffer with the
// data-addressing module (Fig. 5): +2 BRAM (k/b parameter buffers),
// +847 LUT (shift + scale + addressing), +643 FF (FIFOs and registers).
constexpr ResourceVector kL3Sa{0.0, 174.0, 566.0, 0.0};
constexpr ResourceVector kL3OneSa{2.0, 1021.0, 1209.0, 0.0};

// ------------------- Table II infrastructure anchors (SA totals minus the
// attributable PE and L3 contributions, at 16 MACs):
//   PEs=16 : BRAM 454, LUT 54270,  FF 35434
//   PEs=64 : BRAM 758, LUT 125989, FF 58381
//   PEs=256: BRAM 1110, LUT 518759, FF 74169
struct InfraAnchor {
  double log2_pes;
  ResourceVector r;
};
const InfraAnchor kInfraAnchors[] = {
    {4.0, {454.0, 54270.0, 35434.0, 0.0}},
    {6.0, {758.0, 125989.0, 58381.0, 0.0}},
    {8.0, {1110.0, 518759.0, 74169.0, 0.0}},
};

double interp(double x, double x0, double y0, double x1, double y1) {
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

}  // namespace

ResourceVector pe_resources(Design design, std::size_t macs) {
  ONESA_CHECK(macs >= 1, "PE needs at least one MAC");
  const double m = static_cast<double>(macs);
  ResourceVector r;
  r.bram = kPeBram;
  r.dsp = kPeDspPerMac * m;
  r.lut = kPeLutBase + kPeLutPerMac * m;
  r.ff = kPeFfBase + kPeFfPerMac * m;
  if (design == Design::kOneSa) {
    r.lut += kOneSaPeLutDelta;
    r.ff += kOneSaPeFfConst + kOneSaPeFfPerMac * m;
  }
  return r;
}

ResourceVector l3_resources(Design design, bool output_buffer) {
  if (design == Design::kOneSa && output_buffer) return kL3OneSa;
  return kL3Sa;
}

ResourceVector infrastructure(std::size_t pe_count) {
  ONESA_CHECK(pe_count >= 1, "array needs PEs");
  const double x = std::log2(static_cast<double>(pe_count));
  const auto& a = kInfraAnchors;
  // Piecewise-linear in log2(PEs); linear extrapolation outside the anchor
  // range, clamped at zero.
  double lo_x, hi_x;
  ResourceVector lo, hi;
  if (x <= a[1].log2_pes) {
    lo_x = a[0].log2_pes;
    hi_x = a[1].log2_pes;
    lo = a[0].r;
    hi = a[1].r;
  } else {
    lo_x = a[1].log2_pes;
    hi_x = a[2].log2_pes;
    lo = a[1].r;
    hi = a[2].r;
  }
  ResourceVector r;
  r.bram = std::max(0.0, interp(x, lo_x, lo.bram, hi_x, hi.bram));
  r.lut = std::max(0.0, interp(x, lo_x, lo.lut, hi_x, hi.lut));
  r.ff = std::max(0.0, interp(x, lo_x, lo.ff, hi_x, hi.ff));
  r.dsp = 0.0;
  return r;
}

ResourceVector total_resources(Design design, const sim::ArrayConfig& config) {
  config.validate();
  ResourceVector total;
  // PEs.
  total += pe_resources(design, config.macs_per_pe) *
           static_cast<double>(config.pe_count());
  // Three L3 buffers: input, weight, output. Only ONE-SA's output L3 has the
  // addressing module.
  total += l3_resources(design, /*output_buffer=*/false);
  total += l3_resources(design, /*output_buffer=*/false);
  total += l3_resources(design, /*output_buffer=*/true);
  // Interconnect / control / L2 fabric.
  total += infrastructure(config.pe_count());
  return total;
}

}  // namespace onesa::fpga
