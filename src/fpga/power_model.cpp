#include "fpga/power_model.hpp"

namespace onesa::fpga {

namespace {

// Device static power of the Virtex-7 XC7VX485T (Vccint leakage, typical).
constexpr double kStaticWatts = 0.80;

// Dynamic coefficients in watts per resource unit per MHz, in the typical
// XPE range for 7-series at default toggle rates. Calibrated so the 8x8
// ONE-SA (LUT 180222, FF 213042, DSP 1024, BRAM 824) at 200 MHz totals
// 7.61 W: 0.800 + 2.703 + 1.065 + 1.229 + 1.813 = 7.610.
constexpr double kLutWattsPerMhz = 7.5e-8;   // 15 uW per LUT at 200 MHz
constexpr double kFfWattsPerMhz = 2.5e-8;    // 5 uW per FF at 200 MHz
constexpr double kDspWattsPerMhz = 6.0e-6;   // 1.2 mW per DSP at 200 MHz
constexpr double kBramWattsPerMhz = 1.1e-5;  // 2.2 mW per BRAM at 200 MHz

}  // namespace

PowerBreakdown PowerModel::estimate(const ResourceVector& r, double clock_mhz) const {
  PowerBreakdown p;
  p.static_watts = kStaticWatts;
  p.lut_watts = kLutWattsPerMhz * r.lut * clock_mhz;
  p.ff_watts = kFfWattsPerMhz * r.ff * clock_mhz;
  p.dsp_watts = kDspWattsPerMhz * r.dsp * clock_mhz;
  p.bram_watts = kBramWattsPerMhz * r.bram * clock_mhz;
  return p;
}

}  // namespace onesa::fpga
