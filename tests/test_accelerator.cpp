// Integration tests for the OneSaAccelerator façade: golden-model
// equivalence, mode agreement (cycle-accurate vs analytic), and the
// decomposed composite operations (softmax, layernorm, batchnorm).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "onesa/accelerator.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using tensor::FixMatrix;
using tensor::Matrix;
using tensor::to_double;
using tensor::to_fixed;

OneSaConfig small_config(ExecutionMode mode) {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = mode;
  return cfg;
}

TEST(Accelerator, GemmMatchesReference) {
  OneSaAccelerator accel(small_config(ExecutionMode::kCycleAccurate));
  Rng rng(1);
  const FixMatrix a = to_fixed(tensor::random_uniform(5, 6, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(6, 7, rng));
  const auto out = accel.gemm(a, b);
  EXPECT_EQ(out.y, tensor::matmul(a, b));
}

TEST(Accelerator, ElementwiseMatchesEvalFixedGolden) {
  OneSaAccelerator accel(small_config(ExecutionMode::kCycleAccurate));
  const auto& table = accel.tables().get(cpwl::FunctionKind::kGelu);
  Rng rng(2);
  const FixMatrix x = to_fixed(tensor::random_uniform(6, 6, rng, -8.0, 8.0));
  const auto out = accel.elementwise(cpwl::FunctionKind::kGelu, x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(out.y.at_flat(i).raw(), table.eval_fixed(x.at_flat(i)).raw()) << i;
  }
}

// Mode agreement: the analytic backend must produce identical outputs AND
// identical cycle counts to the cycle-accurate one for every operation.
class ModeAgreement : public ::testing::TestWithParam<cpwl::FunctionKind> {};

TEST_P(ModeAgreement, ElementwiseIdenticalAcrossModes) {
  OneSaAccelerator detailed(small_config(ExecutionMode::kCycleAccurate));
  OneSaAccelerator analytic(small_config(ExecutionMode::kAnalytic));
  Rng rng(3);
  const FixMatrix x = to_fixed(tensor::random_uniform(7, 5, rng, -3.0, 3.0));
  const auto a = detailed.elementwise(GetParam(), x);
  const auto b = analytic.elementwise(GetParam(), x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.cycles.total(), b.cycles.total());
}

INSTANTIATE_TEST_SUITE_P(Functions, ModeAgreement,
                         ::testing::Values(cpwl::FunctionKind::kGelu,
                                           cpwl::FunctionKind::kRelu,
                                           cpwl::FunctionKind::kTanh,
                                           cpwl::FunctionKind::kSigmoid,
                                           cpwl::FunctionKind::kExp),
                         [](const auto& info) {
                           return std::string(cpwl::function_name(info.param));
                         });

TEST(Accelerator, GemmModeAgreement) {
  OneSaAccelerator detailed(small_config(ExecutionMode::kCycleAccurate));
  OneSaAccelerator analytic(small_config(ExecutionMode::kAnalytic));
  Rng rng(4);
  const FixMatrix a = to_fixed(tensor::random_uniform(9, 7, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(7, 6, rng));
  const auto da = detailed.gemm(a, b);
  const auto an = analytic.gemm(a, b);
  EXPECT_EQ(da.y, an.y);
  EXPECT_EQ(da.cycles.total(), an.cycles.total());
}

TEST(Accelerator, MhpModeAgreement) {
  OneSaAccelerator detailed(small_config(ExecutionMode::kCycleAccurate));
  OneSaAccelerator analytic(small_config(ExecutionMode::kAnalytic));
  Rng rng(5);
  const FixMatrix x = to_fixed(tensor::random_uniform(6, 6, rng));
  const FixMatrix k = to_fixed(tensor::random_uniform(6, 6, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(6, 6, rng));
  const auto da = detailed.mhp(x, k, b);
  const auto an = analytic.mhp(x, k, b);
  EXPECT_EQ(da.y, an.y);
  EXPECT_EQ(da.cycles.total(), an.cycles.total());
}

TEST(Accelerator, SoftmaxCloseToReference) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  Rng rng(6);
  const Matrix x = tensor::random_uniform(6, 8, rng, -3.0, 3.0);
  const auto out = accel.softmax_rows(to_fixed(x));
  const Matrix got = to_double(out.y);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    // Reference softmax.
    double mx = x(i, 0);
    for (std::size_t j = 1; j < x.cols(); ++j) mx = std::max(mx, x(i, j));
    double sum = 0.0;
    std::vector<double> e(x.cols());
    for (std::size_t j = 0; j < x.cols(); ++j) {
      e[j] = std::exp(x(i, j) - mx);
      sum += e[j];
    }
    double row_sum = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      EXPECT_NEAR(got(i, j), e[j] / sum, 0.03) << i << "," << j;
      row_sum += got(i, j);
    }
    // Probabilities approximately normalized.
    EXPECT_NEAR(row_sum, 1.0, 0.06) << i;
  }
}

TEST(Accelerator, SoftmaxPreservesArgmax) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix x = tensor::random_uniform(1, 8, rng, -4.0, 4.0);
    const auto out = accel.softmax_rows(to_fixed(x));
    std::size_t want = 0;
    std::size_t got = 0;
    const Matrix y = to_double(out.y);
    for (std::size_t j = 1; j < 8; ++j) {
      if (x(0, j) > x(0, want)) want = j;
      if (y(0, j) > y(0, got)) got = j;
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(Accelerator, LayerNormCloseToReference) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  Rng rng(8);
  const std::size_t cols = 16;
  const Matrix x = tensor::random_uniform(5, cols, rng, -2.0, 2.0);
  Matrix gamma(1, cols, 1.0);
  Matrix beta(1, cols, 0.0);
  const double eps = 1e-3;
  const auto out =
      accel.layernorm_rows(to_fixed(x), to_fixed(gamma), to_fixed(beta), eps);
  const Matrix got = to_double(out.y);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < cols; ++j) mean += x(i, j);
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (std::size_t j = 0; j < cols; ++j) var += (x(i, j) - mean) * (x(i, j) - mean);
    var /= static_cast<double>(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      const double want = (x(i, j) - mean) / std::sqrt(var + eps);
      EXPECT_NEAR(got(i, j), want, 0.12) << i << "," << j;
    }
  }
}

TEST(Accelerator, LayerNormAffineApplied) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  Rng rng(9);
  const std::size_t cols = 8;
  const Matrix x = tensor::random_uniform(3, cols, rng, -1.0, 1.0);
  Matrix gamma(1, cols, 2.0);
  Matrix beta(1, cols, 0.5);
  const auto plain = accel.layernorm_rows(to_fixed(x), to_fixed(Matrix(1, cols, 1.0)),
                                          to_fixed(Matrix(1, cols, 0.0)));
  const auto affine =
      accel.layernorm_rows(to_fixed(x), to_fixed(gamma), to_fixed(beta));
  const Matrix p = to_double(plain.y);
  const Matrix a = to_double(affine.y);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(a.at_flat(i), 2.0 * p.at_flat(i) + 0.5, 0.02) << i;
  }
}

TEST(Accelerator, BatchNormColsAffine) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  const FixMatrix x = to_fixed(Matrix{{1.0, 2.0}, {3.0, 4.0}});
  const FixMatrix scale = to_fixed(Matrix{{2.0, 0.5}});
  const FixMatrix shift = to_fixed(Matrix{{1.0, -1.0}});
  const auto out = accel.batchnorm_cols(x, scale, shift);
  const Matrix y = to_double(out.y);
  EXPECT_DOUBLE_EQ(y(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 1.0);
}

TEST(Accelerator, ReduceRowsMax) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  const FixMatrix x = to_fixed(Matrix{{1.0, 5.0, -2.0}, {-7.0, -3.0, -4.0}});
  const auto out = accel.reduce_rows_max(x);
  EXPECT_DOUBLE_EQ(out.y(0, 0).to_double(), 5.0);
  EXPECT_DOUBLE_EQ(out.y(1, 0).to_double(), -3.0);
}

TEST(Accelerator, LifetimeCountersAccumulate) {
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  Rng rng(10);
  const FixMatrix a = to_fixed(tensor::random_uniform(4, 4, rng));
  accel.gemm(a, a);
  const auto after_gemm = accel.lifetime_cycles().total();
  EXPECT_GT(after_gemm, 0u);
  EXPECT_EQ(accel.lifetime_mac_ops(), 4u * 4u * 4u);
  accel.elementwise(cpwl::FunctionKind::kRelu, a);
  EXPECT_GT(accel.lifetime_cycles().total(), after_gemm);
  EXPECT_EQ(accel.lifetime_mac_ops(), 64u + 2u * 16u);
  accel.reset_lifetime();
  EXPECT_EQ(accel.lifetime_cycles().total(), 0u);
  EXPECT_EQ(accel.lifetime_mac_ops(), 0u);
}

TEST(Accelerator, InvalidConfigRejected) {
  OneSaConfig cfg = small_config(ExecutionMode::kAnalytic);
  cfg.granularity = 0.0;
  EXPECT_THROW(OneSaAccelerator{cfg}, ConfigError);
  cfg = small_config(ExecutionMode::kAnalytic);
  cfg.granularity = 1e-6;  // below INT16 resolution
  EXPECT_THROW(OneSaAccelerator{cfg}, ConfigError);
  cfg = small_config(ExecutionMode::kAnalytic);
  cfg.frac_bits = 12;  // datapath is Q6.9; other formats are table-only
  EXPECT_THROW(OneSaAccelerator{cfg}, ConfigError);
}

TEST(Accelerator, BufferInventoryMatchesTableV) {
  // The paper's reference design (Table V): 3 L3 of 0.28 KB, 24 L2 of
  // 0.5 KB, 64 PE output buffers of 0.094 KB, 64 L1 of 0.031 KB.
  OneSaConfig cfg;  // defaults = reference design
  const auto inventory = buffer_inventory(cfg);
  ASSERT_EQ(inventory.size(), 4u);
  EXPECT_EQ(inventory[0].count, 3u);
  EXPECT_NEAR(inventory[0].kilobytes_each, 0.28, 0.01);
  EXPECT_EQ(inventory[1].count, 24u);
  EXPECT_NEAR(inventory[1].kilobytes_each, 0.5, 0.01);
  EXPECT_EQ(inventory[2].count, 64u);
  EXPECT_NEAR(inventory[2].kilobytes_each, 0.094, 0.002);
  EXPECT_EQ(inventory[3].count, 64u);
  EXPECT_NEAR(inventory[3].kilobytes_each, 0.031, 0.002);
}

}  // namespace
}  // namespace onesa
