// Tests for the Intermediate Parameter Fetching datapath: the L3
// DataAddressing module (Fig. 5) and the DataRearrange module (Fig. 6).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "onesa/data_addressing.hpp"
#include "onesa/rearrange.hpp"
#include "sim/timing.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using tensor::FixMatrix;
using tensor::to_fixed;

TEST(DataAddressing, FetchedParamsMatchTableLookup) {
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, {});
  DataAddressing unit;
  unit.load_table(table);
  Rng rng(1);
  const FixMatrix x = to_fixed(tensor::random_uniform(6, 7, rng, -6.0, 6.0));
  const AddressingResult r = unit.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int seg = table.segment_index_raw(x.at_flat(i).raw());
    EXPECT_EQ(r.k.at_flat(i).raw(), table.k_fixed(seg).raw()) << i;
    EXPECT_EQ(r.b.at_flat(i).raw(), table.b_fixed(seg).raw()) << i;
    EXPECT_EQ(static_cast<int>(r.segment.at_flat(i).raw()), seg) << i;
  }
}

TEST(DataAddressing, CapCountsLowAndHigh) {
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kTanh, {});
  // tanh domain is [-4, 4]; feed values straddling it.
  DataAddressing unit;
  unit.load_table(table);
  tensor::Matrix x{{-60.0, -3.0, 0.0, 3.0, 60.0, 55.0}};
  const AddressingResult r = unit.process(to_fixed(x));
  EXPECT_EQ(r.capped_low, 1u);
  EXPECT_EQ(r.capped_high, 2u);
}

TEST(DataAddressing, ProcessWithoutTableThrows) {
  DataAddressing unit;
  EXPECT_THROW(unit.process(FixMatrix(2, 2)), Error);
}

TEST(DataAddressing, MhpWithFetchedParamsEqualsEvalFixed) {
  // The full IPF -> MHP pipeline must reproduce SegmentTable::eval_fixed
  // bit-for-bit (same shift, cap, fetch and 2-lane MAC).
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, {});
  DataAddressing unit;
  unit.load_table(table);
  Rng rng(2);
  const FixMatrix x = to_fixed(tensor::random_uniform(5, 9, rng, -9.0, 9.0));
  const AddressingResult r = unit.process(x);
  const FixMatrix y = tensor::mhp_affine(x, r.k, r.b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y.at_flat(i).raw(), table.eval_fixed(x.at_flat(i)).raw()) << i;
  }
}

TEST(DataAddressing, FifoPeaksTracked) {
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, {});
  DataAddressing unit;
  unit.load_table(table);
  Rng rng(3);
  unit.process(to_fixed(tensor::random_uniform(4, 4, rng)));
  EXPECT_GE(unit.c_fifo_peak(), 1u);
  EXPECT_GE(unit.k_fifo_peak(), 1u);
  EXPECT_GE(unit.reg_fifo_peak(), 1u);
}

TEST(DataRearrange, InterleavingMatchesFig6) {
  DataRearrange unit;
  const FixMatrix x = to_fixed(tensor::Matrix{{1.0, 2.0}});
  const FixMatrix k = to_fixed(tensor::Matrix{{3.0, 4.0}});
  const FixMatrix b = to_fixed(tensor::Matrix{{5.0, 6.0}});
  const RearrangedStreams s = unit.process(x, k, b);
  ASSERT_EQ(s.x_stream.size(), 4u);
  ASSERT_EQ(s.kb_stream.size(), 4u);
  // x stream: [x0, 1, x1, 1].
  EXPECT_DOUBLE_EQ(s.x_stream[0].to_double(), 1.0);
  EXPECT_DOUBLE_EQ(s.x_stream[1].to_double(), 1.0);
  EXPECT_DOUBLE_EQ(s.x_stream[2].to_double(), 2.0);
  EXPECT_DOUBLE_EQ(s.x_stream[3].to_double(), 1.0);
  // kb stream: [k0, b0, k1, b1].
  EXPECT_DOUBLE_EQ(s.kb_stream[0].to_double(), 3.0);
  EXPECT_DOUBLE_EQ(s.kb_stream[1].to_double(), 5.0);
  EXPECT_DOUBLE_EQ(s.kb_stream[2].to_double(), 4.0);
  EXPECT_DOUBLE_EQ(s.kb_stream[3].to_double(), 6.0);
}

TEST(DataRearrange, PairedLanesComputeAffine) {
  // Consuming the two streams two lanes at a time gives k*x + b — the PE's
  // MHP computation on the rearranged data.
  DataRearrange unit;
  Rng rng(4);
  const FixMatrix x = to_fixed(tensor::random_uniform(3, 4, rng, -2.0, 2.0));
  const FixMatrix k = to_fixed(tensor::random_uniform(3, 4, rng, -2.0, 2.0));
  const FixMatrix b = to_fixed(tensor::random_uniform(3, 4, rng, -2.0, 2.0));
  const RearrangedStreams s = unit.process(x, k, b);
  const FixMatrix want = tensor::mhp_affine(x, k, b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    fixed::Acc16 acc;
    acc.mac(s.x_stream[2 * i], s.kb_stream[2 * i]);
    acc.mac(s.x_stream[2 * i + 1], s.kb_stream[2 * i + 1]);
    EXPECT_EQ(acc.result().raw(), want.at_flat(i).raw()) << i;
  }
}

TEST(DataRearrange, ShapeMismatchThrows) {
  DataRearrange unit;
  EXPECT_THROW(unit.process(FixMatrix(2, 2), FixMatrix(2, 3), FixMatrix(2, 2)),
               ShapeError);
}

TEST(IpfCycles, AddressingPlusRearrangeEqualsTimingModel) {
  // The cycle-accurate IPF (2 addressing passes + 1 rearrange pass) must sum
  // to TimingModel::ipf_cycles so both accelerator modes agree.
  sim::ArrayConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.macs_per_pe = 16;
  const std::size_t lanes = sim::TimingModel::ipf_lanes_per_cycle(cfg);
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, {});
  DataAddressing addressing(16, lanes, cfg.dram_latency_cycles);
  addressing.load_table(table);
  DataRearrange rearrange(lanes, cfg.dram_latency_cycles);

  Rng rng(5);
  for (std::size_t n : {1u, 7u, 16u, 33u, 128u}) {
    const FixMatrix x = to_fixed(tensor::random_uniform(n, 3, rng));
    const auto fetched = addressing.process(x);
    const auto streams = rearrange.process(x, fetched.k, fetched.b);
    const std::uint64_t detailed =
        fetched.cycles.ipf_cycles + streams.cycles.ipf_cycles;
    sim::TimingModel model(cfg);
    EXPECT_EQ(detailed, model.ipf_cycles(x.size()).ipf_cycles) << n;
  }
}

}  // namespace
}  // namespace onesa
