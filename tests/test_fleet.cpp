// Tests of the fleet tier (serve/fleet.hpp) and the refactors beneath it:
// multi-shard routing serves bit-identical logits, per-shard stats sum to
// the fleet totals, the version-aware registry hot-swaps models atomically
// under a saturating request stream (every logit matches exactly one
// published version — never a mix), latency-aware batching windows launch
// partial batches at expiry (interactive heads launch immediately), and
// fleet-wide admission control sheds by summed backlog.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/norm.hpp"
#include "serve/fleet.hpp"
#include "serve/request_queue.hpp"
#include "tensor/kernels/pack.hpp"
#include "tensor/ops.hpp"

namespace onesa::serve {
namespace {

using tensor::FixMatrix;
using tensor::Matrix;
using tensor::to_fixed;

OneSaConfig small_config() {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = ExecutionMode::kAnalytic;
  return cfg;
}

FleetConfig small_fleet(std::size_t shards, std::size_t workers) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.workers_per_shard = workers;
  cfg.accelerator = small_config();
  return cfg;
}

/// Small row-independent MLP (Linear -> ReLU -> LayerNorm -> Linear).
std::unique_ptr<nn::Sequential> make_mlp(std::size_t in, std::size_t hidden,
                                         std::size_t out, Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Linear>(in, hidden, rng));
  model->add(nn::make_relu());
  model->add(std::make_unique<nn::LayerNorm>(hidden));
  model->add(std::make_unique<nn::Linear>(hidden, out, rng));
  return model;
}

ModelOptions batchable_options(double window_ms = 0.0) {
  ModelOptions options;
  options.batchable = true;
  options.batch_window_ms = window_ms;
  return options;
}

// ------------------------------------------------------------------- fleet

TEST(Fleet, ServesModelBitExactlyAndShardStatsSumToFleetTotals) {
  Fleet fleet(small_fleet(3, 2));
  Rng rng(80);
  const ModelHandle handle = fleet.register_model("mlp", make_mlp(6, 16, 4, rng));
  EXPECT_EQ(handle->version, 1u);

  std::vector<Matrix> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 36; ++i) {
    inputs.push_back(tensor::random_uniform(1 + i % 4, 6, rng, -1.0, 1.0));
    futures.push_back(fleet.submit_model("mlp", inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult got = futures[i].get();
    EXPECT_EQ(got.logits, handle->infer(inputs[i])) << "request " << i;
    EXPECT_LT(got.shard, fleet.shards());
  }
  fleet.shutdown();

  // Per-shard snapshots sum (via ServeStats::operator+) to the fleet view.
  const ServeStats total = fleet.stats();
  EXPECT_EQ(total.completed(), 36u);
  ServeStats summed;
  std::uint64_t batches = 0;
  for (const ServeStats& s : fleet.shard_stats()) {
    summed += s;
    batches += s.batches();
  }
  EXPECT_EQ(summed.completed(), total.completed());
  EXPECT_EQ(summed.batches(), total.batches());
  EXPECT_EQ(batches, total.batches());
  EXPECT_EQ(summed.rows(), total.rows());
  EXPECT_EQ(summed.total_mac_ops(), total.total_mac_ops());
  EXPECT_EQ(summed.total_cycles().total(), total.total_cycles().total());
  EXPECT_EQ(summed.deadline_misses(), total.deadline_misses());
  // Simulated work appears in the merged lifetime counters and makespan.
  EXPECT_GT(fleet.fleet_lifetime().mac_ops, 0u);
  EXPECT_GT(fleet.makespan_cycles(), 0u);
}

TEST(Fleet, RoundRobinRoutesSubmissionsInTurn) {
  FleetConfig cfg = small_fleet(2, 1);
  cfg.router = RouterPolicy::kRoundRobin;
  Fleet fleet(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(64, 16, 8, 4, 4));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(fleet.submit_trace(trace));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    // Routing happens at submit on the submitting thread, so the rotation
    // is exact: submission i lands on shard i % 2.
    EXPECT_EQ(futures[i].get().shard, i % 2) << "submission " << i;
  }
  fleet.shutdown();
}

TEST(Fleet, ModelAffinityPinsAModelToOneShardAcrossSwaps) {
  FleetConfig cfg = small_fleet(4, 1);
  cfg.router = RouterPolicy::kModelAffinity;
  Fleet fleet(cfg);
  Rng rng(81);
  fleet.register_model("alpha", make_mlp(4, 8, 2, rng), batchable_options());
  fleet.register_model("beta", make_mlp(4, 8, 2, rng), batchable_options());

  auto served_shards = [&](const std::string& name, int n) {
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < n; ++i)
      futures.push_back(fleet.submit_model(name, tensor::random_uniform(2, 4, rng)));
    std::vector<std::size_t> shards;
    for (auto& f : futures) shards.push_back(f.get().shard);
    return shards;
  };

  const auto alpha = served_shards("alpha", 6);
  const auto beta = served_shards("beta", 6);
  for (std::size_t s : alpha) EXPECT_EQ(s, alpha.front());  // one shard per model
  for (std::size_t s : beta) EXPECT_EQ(s, beta.front());

  // Affinity hashes the NAME, so a hot-swap keeps the model on its shard
  // (the new version's batches keep folding into the same queue).
  fleet.swap_model("alpha", make_mlp(4, 8, 2, rng));
  const auto swapped = served_shards("alpha", 4);
  for (std::size_t s : swapped) EXPECT_EQ(s, alpha.front());
  fleet.shutdown();
}

TEST(Fleet, SharedRegistryPacksWeightsOncePerFleet) {
  if (!tensor::kernels::pack_counter_enabled()) {
    GTEST_SKIP() << "pack counter compiled out (NDEBUG build)";
  }
  Fleet fleet(small_fleet(3, 1));
  Rng rng(82);
  tensor::kernels::reset_pack_panel_count();
  fleet.register_model("mlp", make_mlp(6, 16, 4, rng), batchable_options());
  const std::uint64_t packed_at_registration = tensor::kernels::pack_panel_count();
  EXPECT_GT(packed_at_registration, 0u);  // registration pre-packs every Linear

  // One registry for all shards: serving through every shard re-packs
  // NOTHING — the request path consumes the one shared packed copy.
  tensor::kernels::reset_pack_panel_count();
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i)
    futures.push_back(fleet.submit_model("mlp", tensor::random_uniform(2, 6, rng)));
  for (auto& f : futures) f.get();
  fleet.shutdown();
  EXPECT_EQ(tensor::kernels::pack_panel_count(), 0u);
  EXPECT_EQ(fleet.registry().size(), 1u);
}

TEST(Fleet, FleetAdmissionShedsBySummedBacklogAndAccountsEverything) {
  FleetConfig cfg = small_fleet(2, 1);
  cfg.admission.max_pending_requests = 3;  // fleet-wide, not per shard
  Fleet fleet(cfg);
  Rng rng(83);

  constexpr int kSubmitted = 40;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kSubmitted; ++i)
    futures.push_back(fleet.submit_elementwise(
        cpwl::FunctionKind::kRelu, to_fixed(tensor::random_uniform(2, 4, rng))));

  std::size_t served = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++served;
    } catch (const OverloadError&) {
      ++shed;
    }
  }
  fleet.shutdown();
  EXPECT_EQ(served + shed, static_cast<std::size_t>(kSubmitted));
  EXPECT_EQ(fleet.stats().completed(), served);
  EXPECT_EQ(fleet.sheds(), shed);
  EXPECT_EQ(fleet.stats().sheds(), shed);  // fleet-level sheds land in stats
}

// ---------------------------------------------------------------- hot swap

TEST(HotSwap, RegistryPublishesVersionsAtomicallyAndKeepsOldHandlesAlive) {
  ModelRegistry registry;
  Rng rng(84);
  const ModelHandle v1 =
      registry.add("m", make_mlp(4, 8, 2, rng), batchable_options(7.5));
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(registry.version_of("m"), 1u);

  const Matrix x = tensor::random_uniform(3, 4, rng);
  const Matrix v1_logits = v1->infer(x);

  // Option-preserving swap: new weights, same serving metadata.
  const ModelHandle v2 = registry.swap("m", make_mlp(4, 8, 2, rng));
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(registry.version_of("m"), 2u);
  EXPECT_EQ(registry.get("m"), v2);
  EXPECT_TRUE(v2->batchable);
  EXPECT_DOUBLE_EQ(v2->batch_window_ms, 7.5);
  EXPECT_EQ(registry.size(), 1u);  // same name, one entry slot

  // The old handle still serves the old weights (in-flight semantics).
  EXPECT_EQ(v1->infer(x), v1_logits);
  EXPECT_NE(v2->infer(x), v1_logits);  // fresh random weights

  // Explicit-options swap replaces the metadata.
  ModelOptions solo;
  solo.batchable = false;
  const ModelHandle v3 = registry.swap("m", make_mlp(4, 8, 2, rng), solo);
  EXPECT_EQ(v3->version, 3u);
  EXPECT_FALSE(v3->batchable);

  EXPECT_THROW(registry.swap("nope", make_mlp(4, 8, 2, rng)), Error);
  EXPECT_THROW(registry.swap("m", nullptr), Error);
}

TEST(HotSwap, SwapUnderSaturatingLoadNeverMixesVersions) {
  // Concurrent swap_model against a saturating submit stream (the TSan
  // scenario): every returned logit must be bit-exact against SOME published
  // version's direct forward — old or new, never a torn mix — and no future
  // may fail.
  Fleet fleet(small_fleet(2, 2));
  Rng rng(85);
  std::vector<ModelHandle> versions;
  versions.push_back(
      fleet.register_model("m", make_mlp(6, 12, 3, rng), batchable_options()));

  constexpr int kThreads = 2;
  constexpr int kPerThread = 60;
  struct Submission {
    Matrix input;
    std::future<ServeResult> future;
  };
  std::vector<std::vector<Submission>> submissions(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&fleet, &submissions, t] {
      Rng thread_rng(900 + t);
      submissions[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        Matrix input = tensor::random_uniform(1 + i % 3, 6, thread_rng, -1.0, 1.0);
        auto future = fleet.submit_model("m", input);
        submissions[t].push_back({std::move(input), std::move(future)});
      }
    });
  }
  // Swap concurrently with the submitters: each flip publishes a fresh
  // pre-packed version while batches of the old one are in flight.
  for (int swap = 0; swap < 4; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    versions.push_back(fleet.swap_model("m", make_mlp(6, 12, 3, rng)));
  }
  for (auto& thread : submitters) thread.join();
  fleet.shutdown();
  ASSERT_EQ(versions.back()->version, 5u);

  std::size_t checked = 0;
  for (auto& thread_subs : submissions) {
    for (Submission& sub : thread_subs) {
      const ServeResult got = sub.future.get();  // throws on any failed future
      const bool matches_some_version =
          std::any_of(versions.begin(), versions.end(), [&](const ModelHandle& v) {
            return got.logits == v->infer(sub.input);
          });
      EXPECT_TRUE(matches_some_version) << "request " << got.id
                                        << " returned logits matching no version";
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(HotSwap, QuantizedSwapUnderSaturatingLoadNeverMixesVersions) {
  // The INT16 lane must uphold the same hot-swap invariant as the double
  // lane: swaps of a Precision::kInt16 model (quantization + INT16
  // pre-packing happen before publication) against a saturating stream
  // return logits bit-exact against SOME published version's quantized
  // inference — never a torn mix, never a precision fallback.
  Fleet fleet(small_fleet(2, 2));
  Rng rng(86);
  ModelOptions options = batchable_options();
  options.precision = Precision::kInt16;
  const auto make_quantizable = [&rng] {
    // Linear -> ReLU -> Linear: row-independent and fully INT16-servable.
    auto model = std::make_unique<nn::Sequential>();
    model->add(std::make_unique<nn::Linear>(6, 12, rng));
    model->add(nn::make_relu());
    model->add(std::make_unique<nn::Linear>(12, 3, rng));
    return model;
  };
  std::vector<ModelHandle> versions;
  versions.push_back(fleet.register_model("q", make_quantizable(), options));
  ASSERT_NE(versions.back()->quantized, nullptr);

  constexpr int kThreads = 2;
  constexpr int kPerThread = 60;
  struct Submission {
    Matrix input;
    std::future<ServeResult> future;
  };
  std::vector<std::vector<Submission>> submissions(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&fleet, &submissions, t] {
      Rng thread_rng(950 + t);
      submissions[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        Matrix input = tensor::random_uniform(1 + i % 3, 6, thread_rng, -1.0, 1.0);
        auto future = fleet.submit_model("q", input);
        submissions[t].push_back({std::move(input), std::move(future)});
      }
    });
  }
  for (int swap = 0; swap < 4; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    versions.push_back(fleet.swap_model("q", make_quantizable()));
    ASSERT_NE(versions.back()->quantized, nullptr)
        << "option-preserving swap dropped the INT16 lane";
  }
  for (auto& thread : submitters) thread.join();
  fleet.shutdown();
  ASSERT_EQ(versions.back()->version, 5u);

  std::size_t checked = 0;
  for (auto& thread_subs : submissions) {
    for (Submission& sub : thread_subs) {
      const ServeResult got = sub.future.get();
      const bool matches_some_version =
          std::any_of(versions.begin(), versions.end(), [&](const ModelHandle& v) {
            return got.logits == v->infer(sub.input);
          });
      EXPECT_TRUE(matches_some_version)
          << "quantized request " << got.id << " returned logits matching no version";
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<std::size_t>(kThreads * kPerThread));
}

// ------------------------------------------------------- batching windows

BatcherConfig windowed_batcher(double wait_ms) {
  BatcherConfig cfg;
  cfg.max_batch_requests = 4;
  cfg.max_batch_rows = 64;
  cfg.max_batch_wait_ms = wait_ms;
  return cfg;
}

TEST(BatchingWindow, PartialBatchLaunchesAtExpiryAndIsCounted) {
  RequestQueue queue(1, DynamicBatcher(windowed_batcher(20.0)));
  Rng rng(86);
  auto t = make_elementwise_request(cpwl::FunctionKind::kRelu,
                                    to_fixed(tensor::random_uniform(2, 4, rng)));
  const auto pushed = ServeClock::now();
  queue.push(std::move(t.request));

  auto batch = queue.pop_batch(0);  // lone request: waits out the window
  const double waited_ms =
      std::chrono::duration<double, std::milli>(ServeClock::now() - pushed).count();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(queue.window_expiries(), 1u);
  // wait_until never returns before the deadline, so the full window
  // elapsed (small slack for the enqueue-stamp gap).
  EXPECT_GE(waited_ms, 18.0);
  batch.front().promise.set_value({});
}

TEST(BatchingWindow, InteractiveHeadLaunchesImmediately) {
  RequestQueue queue(1, DynamicBatcher(windowed_batcher(500.0)));
  Rng rng(87);
  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;
  auto t = make_elementwise_request(
      cpwl::FunctionKind::kRelu, to_fixed(tensor::random_uniform(2, 4, rng)), interactive);
  queue.push(std::move(t.request));

  // A 500 ms window would hang this single-threaded pop; the interactive
  // class must force an immediate launch instead.
  auto batch = queue.pop_batch(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(queue.window_expiries(), 0u);
  batch.front().promise.set_value({});
}

TEST(BatchingWindow, FullBatchLaunchesWithoutWaiting) {
  RequestQueue queue(1, DynamicBatcher(windowed_batcher(500.0)));
  Rng rng(88);
  std::vector<TaggedRequest> tagged;
  for (std::size_t i = 0; i < 4; ++i) {  // == max_batch_requests
    tagged.push_back(make_elementwise_request(
        cpwl::FunctionKind::kRelu, to_fixed(tensor::random_uniform(2, 4, rng))));
    queue.push(std::move(tagged.back().request));
  }
  auto batch = queue.pop_batch(0);  // budget reached: nothing to wait for
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(queue.window_expiries(), 0u);
  for (auto& req : batch) req.promise.set_value({});
}

TEST(BatchingWindow, CloseDrainsWithoutWaitingOutTheWindow) {
  RequestQueue queue(1, DynamicBatcher(windowed_batcher(500.0)));
  Rng rng(89);
  auto t = make_elementwise_request(cpwl::FunctionKind::kRelu,
                                    to_fixed(tensor::random_uniform(2, 4, rng)));
  queue.push(std::move(t.request));
  queue.close();

  auto batch = queue.pop_batch(0);  // shutdown drain skips the window
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(queue.window_expiries(), 0u);
  batch.front().promise.set_value({});
}

TEST(BatchingWindow, PerModelWindowAppliesOnlyToBatchableModels) {
  ModelRegistry registry;
  Rng rng(90);
  const ModelHandle windowed =
      registry.add("windowed", make_mlp(4, 8, 2, rng), batchable_options(15.0));
  ModelOptions solo;
  solo.batch_window_ms = 15.0;  // non-batchable: the window must be ignored
  const ModelHandle unbatchable = registry.add("solo", make_mlp(4, 8, 2, rng), solo);

  RequestQueue queue(1, DynamicBatcher(windowed_batcher(0.0)));
  auto a = make_model_request(windowed, tensor::random_uniform(2, 4, rng));
  queue.push(std::move(a.request));
  auto batch = queue.pop_batch(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(queue.window_expiries(), 1u);  // waited, expired, launched partial
  batch.front().promise.set_value({});

  auto b = make_model_request(unbatchable, tensor::random_uniform(2, 4, rng));
  queue.push(std::move(b.request));
  batch = queue.pop_batch(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(queue.window_expiries(), 1u);  // unchanged: solo batches never wait
  batch.front().promise.set_value({});
}

TEST(BatchingWindow, SloDeadlineCutsTheWindowShort) {
  // A head whose SLO deadline lands before its window end launches at the
  // deadline: parking a request past its own deadline to improve fill would
  // manufacture a miss the immediate-launch behaviour never had.
  RequestQueue queue(1, DynamicBatcher(windowed_batcher(5000.0)));
  Rng rng(95);
  SubmitOptions slo;
  slo.deadline_ms = 20.0;  // far earlier than the 5 s window
  auto t = make_elementwise_request(cpwl::FunctionKind::kRelu,
                                    to_fixed(tensor::random_uniform(2, 4, rng)), slo);
  const auto pushed = ServeClock::now();
  queue.push(std::move(t.request));

  auto batch = queue.pop_batch(0);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(ServeClock::now() - pushed).count();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GE(waited_ms, 15.0);   // held until (about) the deadline...
  EXPECT_LT(waited_ms, 4000.0);  // ...never anywhere near the window
  EXPECT_EQ(queue.window_expiries(), 1u);
  batch.front().promise.set_value({});
}

TEST(BatchingWindow, ParkedHeadNeverBlocksIncompatibleWork) {
  // A head waiting out its window must not head-of-line block the queue:
  // pending work that could never ride in its batch dispatches first, and
  // the parked head keeps its window.
  ModelRegistry registry;
  Rng rng(91);
  const ModelHandle windowed =
      registry.add("windowed", make_mlp(4, 8, 2, rng), batchable_options(30.0));
  const ModelHandle other = registry.add("other", make_mlp(4, 8, 2, rng),
                                         batchable_options(0.0));

  RequestQueue queue(1, DynamicBatcher(windowed_batcher(0.0)));
  auto parked = make_model_request(windowed, tensor::random_uniform(2, 4, rng));
  const RequestId parked_id = parked.request.id;
  auto ready = make_model_request(other, tensor::random_uniform(2, 4, rng));
  const RequestId ready_id = ready.request.id;
  queue.push(std::move(parked.request));
  queue.push(std::move(ready.request));

  // First pop: the windowed head is parked, so the windowless (later,
  // incompatible) request launches immediately — no expiry, no wait.
  auto batch = queue.pop_batch(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().id, ready_id);
  EXPECT_EQ(queue.window_expiries(), 0u);
  batch.front().promise.set_value({});

  // Second pop: only the parked head remains; it waits out its window.
  batch = queue.pop_batch(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().id, parked_id);
  EXPECT_EQ(queue.window_expiries(), 1u);
  batch.front().promise.set_value({});
}

TEST(BatchingWindow, ExpiryCountsSurfaceInPoolAndFleetStats) {
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config();
  cfg.batcher = windowed_batcher(5.0);
  ServerPool pool(cfg);
  Rng rng(92);
  pool.submit_elementwise(cpwl::FunctionKind::kRelu,
                          to_fixed(tensor::random_uniform(2, 4, rng)))
      .get();
  pool.shutdown();
  EXPECT_GE(pool.stats().window_expiries(), 1u);

  FleetConfig fleet_cfg = small_fleet(2, 1);
  fleet_cfg.batcher = windowed_batcher(5.0);
  Fleet fleet(fleet_cfg);
  fleet
      .submit_elementwise(cpwl::FunctionKind::kRelu,
                          to_fixed(tensor::random_uniform(2, 4, rng)))
      .get();
  fleet.shutdown();
  EXPECT_GE(fleet.stats().window_expiries(), 1u);  // summed across shards
}

// ------------------------------------------------------- stats aggregation

TEST(ServeStatsAggregation, OperatorPlusMatchesMerge) {
  ServeStats a;
  ServeStats b;
  BatchRecord ra;
  ra.requests = 2;
  ra.rows = 4;
  ra.padded_rows = 8;
  ra.mac_ops = 50;
  ra.latency_ms = {1.0, 2.0};
  ra.latency_class = {Priority::kInteractive, Priority::kBulk};
  BatchRecord rb;
  rb.requests = 1;
  rb.rows = 4;
  rb.padded_rows = 4;
  rb.mac_ops = 20;
  rb.latency_ms = {10.0};
  a.record_batch(ra);
  a.record_window_expiries(2);
  b.record_batch(rb);
  b.record_sheds(3);

  const ServeStats sum = a + b;
  EXPECT_EQ(sum.completed(), 3u);
  EXPECT_EQ(sum.batches(), 2u);
  EXPECT_EQ(sum.total_mac_ops(), 70u);
  EXPECT_EQ(sum.sheds(), 3u);
  EXPECT_EQ(sum.window_expiries(), 2u);
  EXPECT_EQ(sum.class_completed(Priority::kInteractive), 1u);
  EXPECT_EQ(sum.class_completed(Priority::kNormal), 1u);  // classless rb entry
  EXPECT_EQ(sum.class_completed(Priority::kBulk), 1u);
  EXPECT_DOUBLE_EQ(sum.percentile_latency_ms(100.0), 10.0);

  ServeStats accum;
  accum += a;
  accum += b;
  EXPECT_EQ(accum.completed(), sum.completed());
  EXPECT_EQ(accum.window_expiries(), sum.window_expiries());
}

// ---------------------------------------------------------------------------
// Shutdown hardening (the network front door's drain contract depends on
// shutdown being idempotent, concurrency-safe, and on a submit that races
// shutdown settling its future instead of throwing).
// ---------------------------------------------------------------------------

TEST(Shutdown, DoubleShutdownIsIdempotent) {
  Fleet fleet(small_fleet(2, 2));
  Rng rng(7);
  fleet.register_model("mlp", make_mlp(4, 8, 3, rng));
  auto fut = fleet.submit_model("mlp", tensor::random_uniform(2, 4, rng));
  EXPECT_NO_THROW(fut.get());
  fleet.shutdown();
  EXPECT_NO_THROW(fleet.shutdown());
  EXPECT_NO_THROW(fleet.shutdown());
}

TEST(Shutdown, ConcurrentShutdownIsSafe) {
  // Several threads (e.g. a signal watcher racing a destructor) may call
  // shutdown() at once. Every call must return only after the drain is
  // complete, and none may crash or double-drain.
  for (int round = 0; round < 4; ++round) {
    Fleet fleet(small_fleet(2, 2));
    Rng rng(100 + round);
    fleet.register_model("mlp", make_mlp(4, 8, 3, rng));
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(fleet.submit_model("mlp", tensor::random_uniform(1, 4, rng)));
    }
    std::vector<std::thread> closers;
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&fleet] { fleet.shutdown(); });
    }
    for (auto& t : closers) t.join();
    // The work submitted before shutdown completed (shutdown drains).
    for (auto& f : futures) EXPECT_NO_THROW(f.get());
  }
}

TEST(Shutdown, SubmitRacingShutdownSettlesEveryFutureExactlyOnce) {
  // Hammer submit from several threads while another thread shuts the fleet
  // down mid-stream. Every returned future must settle — with a value or a
  // typed OverloadError — and none may throw from submit itself or hang.
  for (int round = 0; round < 3; ++round) {
    Fleet fleet(small_fleet(2, 1));
    Rng rng(200 + round);
    const ModelHandle handle = fleet.register_model("mlp", make_mlp(4, 8, 3, rng));

    std::mutex mu;
    std::vector<std::future<ServeResult>> futures;
    std::atomic<bool> go{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&, t] {
        Rng local(300 + 10 * round + t);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        while (!done.load(std::memory_order_acquire)) {
          auto fut = fleet.submit_model(handle, tensor::random_uniform(1, 4, local));
          std::lock_guard<std::mutex> lock(mu);
          futures.push_back(std::move(fut));
        }
      });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fleet.shutdown();
    done.store(true, std::memory_order_release);
    for (auto& t : submitters) t.join();

    std::size_t values = 0, overloads = 0;
    for (auto& f : futures) {
      // settle is the contract: get() may not hang (deadline enforced by
      // the test runner) and may only yield a value or a typed error.
      try {
        (void)f.get();
        ++values;
      } catch (const OverloadError&) {
        ++overloads;
      }
    }
    EXPECT_EQ(values + overloads, futures.size());
    // The race window is real: submits after the accepting_ flip shed.
    EXPECT_GT(futures.size(), 0u);
  }
}

}  // namespace
}  // namespace onesa::serve
