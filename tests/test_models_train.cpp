// End-to-end training + accelerated-inference tests: the pipeline behind
// Table III. Models train on easy synthetic tasks to above-chance accuracy
// and the ONE-SA INT16/CPWL inference stays close to the reference at fine
// granularity.
#include <gtest/gtest.h>

#include "data/synth.hpp"
#include "nn/graph.hpp"
#include "nn/models.hpp"
#include "train/loss.hpp"
#include "train/trainer.hpp"

namespace onesa::train {
namespace {

TEST(TrainCnn, LearnsEasyImageTask) {
  Rng rng(100);
  data::ImageTaskSpec task_spec;
  task_spec.height = 8;
  task_spec.width = 8;
  task_spec.train_samples = 96;
  task_spec.test_samples = 48;
  task_spec.separation = 1.6;
  const auto split = data::make_image_task(task_spec, rng);

  nn::CnnSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.conv1_channels = 4;
  spec.conv2_channels = 8;
  auto model = nn::make_cnn_classifier(spec, rng);

  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.lr = 0.05;
  train_classifier(*model, split.train, cfg);
  const double acc = evaluate_classifier(*model, split.test);
  EXPECT_GT(acc, 0.6) << "CNN failed to learn the easy task";
}

TEST(TrainCnn, AccelAccuracyCloseAtFineGranularity) {
  Rng rng(101);
  data::ImageTaskSpec task_spec;
  task_spec.height = 8;
  task_spec.width = 8;
  task_spec.train_samples = 96;
  task_spec.test_samples = 48;
  task_spec.separation = 1.6;
  const auto split = data::make_image_task(task_spec, rng);

  nn::CnnSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.conv1_channels = 4;
  spec.conv2_channels = 8;
  auto model = nn::make_cnn_classifier(spec, rng);
  TrainConfig cfg;
  cfg.epochs = 12;
  train_classifier(*model, split.train, cfg);
  const double ref = evaluate_classifier(*model, split.test);

  OneSaConfig accel_cfg;
  accel_cfg.array.rows = 4;
  accel_cfg.array.cols = 4;
  accel_cfg.array.macs_per_pe = 4;
  accel_cfg.granularity = 0.125;
  accel_cfg.mode = ExecutionMode::kAnalytic;
  OneSaAccelerator accel(accel_cfg);
  const double got = evaluate_classifier_accel(*model, accel, split.test);
  EXPECT_GE(got, ref - 0.15) << "CPWL at g=0.125 degraded CNN accuracy too much";
}

TEST(TrainTransformer, LearnsMarkerTask) {
  Rng rng(102);
  data::SequenceTaskSpec task_spec;
  task_spec.seq_len = 8;
  task_spec.train_samples = 96;
  task_spec.test_samples = 48;
  task_spec.marker_rate = 0.7;
  const auto split = data::make_sequence_task(task_spec, rng);

  nn::TransformerSpec spec;
  spec.seq_len = 8;
  spec.d_model = 16;
  spec.num_heads = 2;
  spec.num_layers = 1;
  spec.ffn_hidden = 32;
  auto model = nn::make_transformer_classifier(spec, rng);

  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 8;
  cfg.lr = 0.002;
  cfg.use_adam = true;
  train_sequence_classifier(*model, split.train, cfg);
  const double acc = evaluate_sequence_classifier(*model, split.test);
  EXPECT_GT(acc, 0.5) << "transformer failed to learn the marker task";
}

TEST(TrainGcn, LearnsCommunityTask) {
  Rng rng(103);
  data::GraphTaskSpec task_spec;
  task_spec.nodes = 64;
  task_spec.intra_edge_prob = 0.2;
  const auto task = data::make_graph_task(task_spec, rng);

  nn::GcnSpec spec;
  spec.features = task_spec.features;
  const auto adj = nn::normalized_adjacency(task_spec.nodes, task.edges);
  auto model = nn::make_gcn_classifier(adj, spec, rng);

  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.lr = 0.02;
  cfg.use_adam = true;
  train_gcn(*model, task, cfg);
  const double acc = evaluate_gcn(*model, task);
  EXPECT_GT(acc, 0.6) << "GCN failed to learn the community task";
}

TEST(TrainGcn, AccelCloseToReference) {
  Rng rng(104);
  data::GraphTaskSpec task_spec;
  task_spec.nodes = 48;
  task_spec.intra_edge_prob = 0.25;
  const auto task = data::make_graph_task(task_spec, rng);
  nn::GcnSpec spec;
  spec.features = task_spec.features;
  const auto adj = nn::normalized_adjacency(task_spec.nodes, task.edges);
  auto model = nn::make_gcn_classifier(adj, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.lr = 0.02;
  cfg.use_adam = true;
  train_gcn(*model, task, cfg);

  const double ref = evaluate_gcn(*model, task);
  OneSaConfig accel_cfg;
  accel_cfg.array.rows = 4;
  accel_cfg.array.cols = 4;
  accel_cfg.array.macs_per_pe = 4;
  accel_cfg.granularity = 0.25;
  accel_cfg.mode = ExecutionMode::kAnalytic;
  OneSaAccelerator accel(accel_cfg);
  const double got = evaluate_gcn_accel(*model, accel, task);
  EXPECT_GE(got, ref - 0.2);
}

TEST(Optimizers, SgdReducesLoss) {
  Rng rng(105);
  data::ImageTaskSpec task_spec;
  task_spec.height = 6;
  task_spec.width = 6;
  task_spec.classes = 2;
  task_spec.train_samples = 32;
  const auto split = data::make_image_task(task_spec, rng);

  nn::CnnSpec spec;
  spec.height = 6;
  spec.width = 6;
  spec.conv1_channels = 2;
  spec.conv2_channels = 4;
  spec.classes = 2;
  auto model = nn::make_cnn_classifier(spec, rng);
  TrainConfig one_epoch;
  one_epoch.epochs = 1;
  const double first = train_classifier(*model, split.train, one_epoch);
  TrainConfig more;
  more.epochs = 8;
  const double later = train_classifier(*model, split.train, more);
  EXPECT_LT(later, first);
}

TEST(Loss, CrossEntropyGradientSumsToZeroPerRow) {
  tensor::Matrix logits{{1.0, 2.0, 0.5}, {0.0, -1.0, 3.0}};
  tensor::Matrix grad;
  softmax_cross_entropy(logits, {1, 2}, grad);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) sum += grad(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(Loss, MaskRestrictsRows) {
  tensor::Matrix logits{{5.0, 0.0}, {0.0, 5.0}};
  tensor::Matrix grad;
  // Only row 0 counts; its label is correct so loss is small.
  const double masked = softmax_cross_entropy(logits, {0, 0}, grad, {true, false});
  EXPECT_LT(masked, 0.1);
  EXPECT_DOUBLE_EQ(grad(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(1, 1), 0.0);
}

TEST(Loss, AccuracyWithExcludeMask) {
  tensor::Matrix logits{{1.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}};
  // Exclude row 0; of the rest, row 1 correct (label 1), row 2 wrong.
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 1, 1}, {true, false, false}), 0.5);
}

}  // namespace
}  // namespace onesa::train
