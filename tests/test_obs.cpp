// Tests of the observability layer (src/obs/): exact counter/histogram
// totals under concurrent writers, histogram percentile accuracy against an
// exact sorted reference across distributions, registry exposition formats,
// the trace collector's event model (sampling, ordering, Chrome export),
// and the end-to-end invariant the CI trace checker enforces — every
// sampled request's spans form a complete submit -> terminal chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server_pool.hpp"
#include "tensor/ops.hpp"

namespace onesa::obs {
namespace {

// The registry is process-global and shared across tests; each test uses
// distinctly named metrics and resets the registry up front so a previous
// test's samples cannot bleed into its assertions.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    MetricsRegistry::global().reset();
    trace_stop();
    trace_clear();
  }
  void TearDown() override {
    set_metrics_enabled(true);
    trace_stop();
    trace_clear();
  }
};

TEST_F(ObsTest, CounterExactTotalUnderConcurrentWriters) {
  Counter& counter = MetricsRegistry::global().counter("test_counter_concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, GaugeAggregatesDeltasAcrossThreads) {
  Gauge& gauge = MetricsRegistry::global().gauge("test_gauge_concurrent");
  constexpr std::size_t kThreads = 6;
  constexpr std::int64_t kRounds = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (std::int64_t i = 0; i < kRounds; ++i) {
        gauge.add(3);
        gauge.sub(2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(kThreads) * kRounds);
}

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  Counter& counter = MetricsRegistry::global().counter("test_counter_disabled");
  Histogram& histogram = MetricsRegistry::global().histogram("test_histogram_disabled");
  set_metrics_enabled(false);
  counter.add(17);
  histogram.record(3.5);
  set_metrics_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST_F(ObsTest, HistogramBucketBoundsContainTheirValues) {
  for (const double v : {1e-9, 0.001, 0.5, 0.9999, 1.0, 1.5, 3.14159, 42.0, 1e6, 7.7e9}) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lo(idx), v) << "value " << v;
    EXPECT_GT(Histogram::bucket_hi(idx), v) << "value " << v;
  }
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
}

/// Record `values` and compare histogram percentiles against the exact
/// sorted reference within the log-linear error bound (1/32 subbucket width
/// plus interpolation slack).
void check_percentiles(const std::vector<double>& values, const std::string& name) {
  Histogram& histogram = MetricsRegistry::global().histogram("test_histogram_" + name);
  for (const double v : values) histogram.record(v);
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, values.size());

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(snap.min, sorted.front());
  EXPECT_DOUBLE_EQ(snap.max, sorted.back());

  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(sorted.size()))));
    const double exact = sorted[rank - 1];
    const double approx = snap.percentile(p);
    // 1/32 bucket width => 3.125% bound; allow 5% for rank rounding at
    // distribution edges.
    EXPECT_NEAR(approx, exact, std::abs(exact) * 0.05 + 1e-12)
        << name << " p" << p << " exact " << exact << " approx " << approx;
  }
}

TEST_F(ObsTest, HistogramPercentilesMatchSortedReferenceAcrossDistributions) {
  std::mt19937 gen(1234);
  constexpr std::size_t kSamples = 20000;

  std::vector<double> uniform(kSamples);
  std::uniform_real_distribution<double> uni(0.5, 250.0);
  for (auto& v : uniform) v = uni(gen);
  check_percentiles(uniform, "uniform");

  std::vector<double> expo(kSamples);
  std::exponential_distribution<double> exp_dist(1.0 / 8.0);  // mean 8 ms
  for (auto& v : expo) v = exp_dist(gen) + 1e-6;
  check_percentiles(expo, "exponential");

  std::vector<double> lognormal(kSamples);
  std::lognormal_distribution<double> logn(1.0, 1.5);
  for (auto& v : lognormal) v = logn(gen);
  check_percentiles(lognormal, "lognormal");

  // Bimodal latency (fast path + slow tail), the shape serving latencies
  // actually take.
  std::vector<double> bimodal(kSamples);
  std::normal_distribution<double> fast(2.0, 0.2);
  std::normal_distribution<double> slow(80.0, 5.0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double v = i % 10 == 0 ? slow(gen) : fast(gen);
    bimodal[i] = std::max(v, 1e-3);
  }
  check_percentiles(bimodal, "bimodal");
}

TEST_F(ObsTest, HistogramExactCountAndSumUnderConcurrentWriters) {
  Histogram& histogram = MetricsRegistry::global().histogram("test_histogram_concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      // Small integer values: every partial sum is exact in double, so the
      // concurrent CAS-accumulated total must be exact too.
      for (std::size_t i = 0; i < kPerThread; ++i)
        histogram.record(static_cast<double>(1 + (t + i) % 7));
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);

  double expected_sum = 0.0;
  for (std::size_t t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < kPerThread; ++i)
      expected_sum += static_cast<double>(1 + (t + i) % 7);
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST_F(ObsTest, RegistryReturnsStableReferencesAndExposesBothFormats) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& c1 = registry.counter("test_expo_total");
  Counter& c2 = registry.counter("test_expo_total");
  EXPECT_EQ(&c1, &c2);  // same name, same metric

  registry.counter("test_expo_labeled_total{model=\"mlp\",version=\"2\"}").add(5);
  registry.gauge("test_expo_gauge").set(-3);
  Histogram& histogram = registry.histogram("test_expo_ms{class=\"bulk\"}");
  for (int i = 1; i <= 100; ++i) histogram.record(static_cast<double>(i));

  std::ostringstream prom;
  registry.write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE test_expo_labeled_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_expo_labeled_total{model=\"mlp\",version=\"2\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge -3"), std::string::npos);
  // Summary exposition: quantile spliced into the existing label set, and
  // _count/_sum carry the label set after the suffixed name.
  EXPECT_NE(text.find("test_expo_ms{class=\"bulk\",quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("test_expo_ms_count{class=\"bulk\"} 100"), std::string::npos);

  std::ostringstream json;
  registry.write_json(json);
  const std::string jtext = json.str();
  EXPECT_NE(jtext.find("\"counters\""), std::string::npos);
  EXPECT_NE(jtext.find("\"test_expo_labeled_total{model=\\\"mlp\\\",version=\\\"2\\\"}\": 5"),
            std::string::npos);
  EXPECT_NE(jtext.find("\"p50\""), std::string::npos);
}

#ifndef ONESA_TRACING_DISABLED

TEST_F(ObsTest, TraceSamplingIsDeterministicAndRateShaped) {
  TraceCollector& collector = TraceCollector::global();
  collector.start(1.0);
  for (std::uint64_t id = 1; id <= 64; ++id) EXPECT_TRUE(collector.sample(id));
  collector.start(0.0);
  for (std::uint64_t id = 1; id <= 64; ++id) EXPECT_FALSE(collector.sample(id));
  collector.start(0.25);
  std::size_t sampled = 0;
  for (std::uint64_t id = 1; id <= 4000; ++id) {
    const bool first = collector.sample(id);
    EXPECT_EQ(first, collector.sample(id));  // deterministic per id
    if (first) ++sampled;
  }
  EXPECT_GT(sampled, 4000 * 0.25 / 2);
  EXPECT_LT(sampled, 4000 * 0.25 * 2);
  collector.stop();
}

TEST_F(ObsTest, TraceEventsSortAndExportAsChromeJson) {
  trace_start(1.0);
  const std::int64_t now = trace_now_us();
  trace_async_begin("request", "request", 7, now, "\"kind\":\"gemm\"");
  trace_complete("gemm", "kernel", now + 10, 25, "\"m\":4");
  trace_async_end("request", "request", 7, now + 50, "\"outcome\":\"ok\"");
  trace_stop();

  const auto events = TraceCollector::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_us < b.ts_us;
                             }));

  std::ostringstream os;
  TraceCollector::global().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 25"), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"7\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"outcome\":\"ok\"}"), std::string::npos);
}

TEST_F(ObsTest, ServedRequestsFormCompleteSpanChains) {
  trace_start(1.0);
  {
    serve::ServerPoolConfig cfg;
    cfg.workers = 2;
    cfg.accelerator.array.rows = 4;
    cfg.accelerator.array.cols = 4;
    serve::ServerPool pool(cfg);
    Rng rng(99);
    std::vector<std::future<serve::ServeResult>> futures;
    for (int i = 0; i < 12; ++i) {
      futures.push_back(pool.submit_elementwise(
          cpwl::FunctionKind::kRelu,
          tensor::to_fixed(tensor::random_uniform(3, 8, rng, -1.0, 1.0))));
    }
    for (auto& f : futures) f.get();
    pool.shutdown();
  }
  trace_stop();

  // Every "request" span that opened must close exactly once, and the
  // nested spans must stay inside the outer [begin, end] window — the same
  // invariants bench/check_trace.py enforces on the demo trace in CI.
  std::map<std::uint64_t, std::int64_t> begin_ts;
  std::map<std::uint64_t, std::int64_t> end_ts;
  const auto events = TraceCollector::global().snapshot();
  for (const auto& ev : events) {
    if (std::string(ev.cat) != "request" || std::string(ev.name) != "request") continue;
    if (ev.phase == TraceEvent::Phase::kAsyncBegin) {
      EXPECT_EQ(begin_ts.count(ev.id), 0u) << "request " << ev.id << " opened twice";
      begin_ts[ev.id] = ev.ts_us;
    } else if (ev.phase == TraceEvent::Phase::kAsyncEnd) {
      EXPECT_EQ(end_ts.count(ev.id), 0u) << "request " << ev.id << " closed twice";
      end_ts[ev.id] = ev.ts_us;
    }
  }
  EXPECT_EQ(begin_ts.size(), 12u);
  ASSERT_EQ(begin_ts.size(), end_ts.size());
  for (const auto& [id, ts] : begin_ts) {
    ASSERT_EQ(end_ts.count(id), 1u) << "request " << id << " never reached a terminal span";
    EXPECT_GE(end_ts[id], ts);
  }
  for (const auto& ev : events) {
    if (std::string(ev.cat) != "request") continue;
    ASSERT_EQ(begin_ts.count(ev.id), 1u);
    EXPECT_GE(ev.ts_us, begin_ts[ev.id]);
    EXPECT_LE(ev.ts_us, end_ts[ev.id]);
  }
}

#endif  // ONESA_TRACING_DISABLED

}  // namespace
}  // namespace onesa::obs
