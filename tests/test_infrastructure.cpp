// Tests for the infrastructure substrate: error macros, logging, table
// rendering, memory models and cycle accounting.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/clock.hpp"
#include "sim/memory.hpp"

namespace onesa {
namespace {

TEST(ErrorMacros, CheckThrowsWithContext) {
  try {
    ONESA_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("test_infrastructure.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, CheckPassesSilently) {
  EXPECT_NO_THROW(ONESA_CHECK(2 + 2 == 4, "never shown"));
}

TEST(ErrorMacros, ShapeCheckThrowsShapeError) {
  EXPECT_THROW(ONESA_CHECK_SHAPE(false, "bad dims"), ShapeError);
}

TEST(ErrorHierarchy, ConfigAndShapeAreErrors) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw ShapeError("x"), Error);
}

TEST(Logging, LevelGate) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::kError);
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.set_level(LogLevel::kTrace);
  EXPECT_TRUE(log.enabled(LogLevel::kDebug));
  log.set_level(before);
}

TEST(TablePrinter, AlignsColumnsAndPadsMissingCells) {
  TablePrinter t({"A", "Column"});
  t.add_row({"1", "x"});
  t.add_row({"22"});  // missing second cell
  std::ostringstream out;
  t.render(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| A  | Column |"), std::string::npos);
  EXPECT_NE(s.find("| 22 |        |"), std::string::npos);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(-1.0, 0), "-1");
}

TEST(TablePrinter, WithRatio) {
  EXPECT_EQ(TablePrinter::with_ratio(110.0, 100.0), "110 (110.0%)");
  EXPECT_EQ(TablePrinter::with_ratio(5.0, 0.0), "5");  // no baseline
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(7);
  Rng b(7);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  Rng child_a = a.fork();
  double x = child_a.uniform();
  double y = a.uniform();
  // Fork advanced the parent once; the child stream differs from parent's.
  EXPECT_NE(x, y);
}

TEST(Rng, IntegerBoundsInclusive) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  std::size_t ones = 0;
  for (int i = 0; i < 1000; ++i) {
    ones += rng.categorical({0.0, 1.0}) == 1 ? 1 : 0;
  }
  EXPECT_EQ(ones, 1000u);
}

TEST(CycleStats, SumAndSeconds) {
  sim::CycleStats s;
  s.fill_cycles = 10;
  s.compute_cycles = 20;
  s.drain_cycles = 30;
  s.memory_cycles = 40;
  s.ipf_cycles = 100;
  EXPECT_EQ(s.total(), 200u);
  EXPECT_DOUBLE_EQ(s.seconds(200.0), 200.0 / 200e6);
  sim::CycleStats t = s;
  t += s;
  EXPECT_EQ(t.total(), 400u);
  EXPECT_NE(s.to_string().find("total=200"), std::string::npos);
}

TEST(DramModel, TransferCyclesIncludesLatency) {
  sim::DramModel dram(16, 10);
  EXPECT_EQ(dram.transfer_cycles(0), 0u);
  EXPECT_EQ(dram.transfer_cycles(1), 11u);
  EXPECT_EQ(dram.transfer_cycles(16), 11u);
  EXPECT_EQ(dram.transfer_cycles(17), 12u);
}

TEST(DramModel, TrafficAccounting) {
  sim::DramModel dram(16, 10);
  dram.record_read(100);
  dram.record_read(50);
  dram.record_write(20);
  EXPECT_EQ(dram.bytes_read(), 150u);
  EXPECT_EQ(dram.bytes_written(), 20u);
}

TEST(BufferModel, CapacityEnforced) {
  sim::BufferModel buf("test", sim::BufferLevel::kL2, 100, 8);
  buf.allocate(60);
  buf.allocate(40);
  EXPECT_THROW(buf.allocate(1), Error);
  buf.release(50);
  EXPECT_NO_THROW(buf.allocate(10));
  EXPECT_EQ(buf.peak_bytes(), 100u);
  EXPECT_THROW(buf.release(1000), Error);
}

TEST(BufferModel, StreamCycles) {
  sim::BufferModel buf("port", sim::BufferLevel::kL3, 256, 8);
  EXPECT_EQ(buf.stream_cycles(8), 1u);
  EXPECT_EQ(buf.stream_cycles(9), 2u);
  EXPECT_EQ(buf.stream_cycles(0), 0u);
}

TEST(BufferModel, InvalidConstruction) {
  EXPECT_THROW(sim::BufferModel("x", sim::BufferLevel::kL1, 0, 8), Error);
  EXPECT_THROW(sim::BufferModel("x", sim::BufferLevel::kL1, 8, 0), Error);
}

}  // namespace
}  // namespace onesa
