// Tests for the paper-scale workload traces (Fig. 1 / Table IV inputs).
#include <gtest/gtest.h>

#include "nn/workload.hpp"

namespace onesa::nn {
namespace {

sim::ArrayConfig reference_config() {
  sim::ArrayConfig cfg;  // 8x8 x 16 MACs @ 200 MHz — the paper's design point
  return cfg;
}

TEST(Resnet50Trace, TotalOpsNearPublishedFlops) {
  // ResNet-50 at 224x224 is ~4.1 GMACs; the paper's Table IV implies
  // ~3.97 G operations in its 1-op-per-MAC convention (152.89 GOPS x 26 ms).
  const auto trace = resnet50_trace(224);
  const double macs = trace.total_ops() / 2.0;
  EXPECT_GT(macs, 3.5e9);
  EXPECT_LT(macs, 4.5e9);
}

TEST(Resnet50Trace, GemmShareDominates) {
  // Fig. 1a: GEMM is the dominant category in a CNN.
  const auto census = resnet50_trace(32).census();
  EXPECT_GT(census.gemm / census.total(), 0.6);
  EXPECT_GT(census.batchnorm, 0.0);
  EXPECT_GT(census.relu, 0.0);
  EXPECT_GT(census.softmax, 0.0);
  EXPECT_DOUBLE_EQ(census.gelu, 0.0);
  EXPECT_DOUBLE_EQ(census.layernorm, 0.0);
  // BatchNorm is the largest nonlinear category (Fig. 1a shape).
  EXPECT_GT(census.batchnorm, census.relu);
  EXPECT_GT(census.batchnorm, census.softmax);
}

TEST(BertTrace, TotalOpsNearPublishedFlops) {
  // BERT-base at seq 128 is ~11.2 GMACs (the standard count). The paper's
  // implied ~5.5 G ops suggests a shorter sequence; we keep the standard
  // seq-128 shape and note the discrepancy in EXPERIMENTS.md.
  const auto trace = bert_base_trace(128);
  const double macs = trace.total_ops() / 2.0;
  EXPECT_GT(macs, 9.0e9);
  EXPECT_LT(macs, 14.0e9);
}

TEST(BertTrace, GeluAndLayernormPresent) {
  const auto census = bert_base_trace(64).census();
  EXPECT_GT(census.gemm / census.total(), 0.7);  // Fig. 1b: 82.39%
  EXPECT_GT(census.gelu, 0.0);
  EXPECT_GT(census.layernorm, 0.0);
  EXPECT_GT(census.softmax, 0.0);
  EXPECT_DOUBLE_EQ(census.batchnorm, 0.0);
}

TEST(GcnTrace, ShapeSane) {
  const auto trace = gcn_trace();
  const double macs = trace.total_ops() / 2.0;
  // Paper-implied: 197.58 GOPS x 5.87 ms ~ 1.16 G ops.
  EXPECT_GT(macs, 0.5e9);
  EXPECT_LT(macs, 3.0e9);
}

TEST(TraceEstimate, LatencyInPaperBallpark) {
  // Shape check, not number-matching: the reference design should land in
  // the right order of magnitude vs Table IV (ResNet-50: 26 ms).
  const sim::TimingModel timing(reference_config());
  const auto est = estimate_trace(resnet50_trace(224), timing);
  EXPECT_GT(est.latency_ms, 5.0);
  EXPECT_LT(est.latency_ms, 120.0);
  EXPECT_GT(est.gops, 20.0);
  EXPECT_LT(est.gops, 410.0);  // bounded by peak 204.8 x2 margin
}

TEST(TraceEstimate, BiggerArrayIsFaster) {
  const auto trace = bert_base_trace(128);
  sim::ArrayConfig small = reference_config();
  small.rows = small.cols = 4;
  sim::ArrayConfig large = reference_config();
  large.rows = large.cols = 16;
  const auto slow = estimate_trace(trace, sim::TimingModel(small));
  const auto fast = estimate_trace(trace, sim::TimingModel(large));
  EXPECT_LT(fast.latency_ms, slow.latency_ms);
}

TEST(TraceEstimate, MoreMacsFaster) {
  const auto trace = resnet50_trace(224);
  sim::ArrayConfig two = reference_config();
  two.macs_per_pe = 2;
  sim::ArrayConfig thirtytwo = reference_config();
  thirtytwo.macs_per_pe = 32;
  EXPECT_LT(estimate_trace(trace, sim::TimingModel(thirtytwo)).latency_ms,
            estimate_trace(trace, sim::TimingModel(two)).latency_ms);
}

TEST(TraceEstimate, CyclesIncludeAllPhases) {
  const sim::TimingModel timing(reference_config());
  const auto cycles = estimate_trace_cycles(bert_base_trace(32), timing);
  EXPECT_GT(cycles.compute_cycles, 0u);
  EXPECT_GT(cycles.fill_cycles, 0u);
  EXPECT_GT(cycles.drain_cycles, 0u);
  EXPECT_GT(cycles.ipf_cycles, 0u);  // GELU/exp/rsqrt passes
}

TEST(Resnet50Trace, ScalesWithImageSize) {
  EXPECT_GT(resnet50_trace(224).total_ops(), 10.0 * resnet50_trace(64).total_ops());
}

TEST(Resnet50Trace, RejectsUnalignedImage) {
  EXPECT_THROW(resnet50_trace(100), Error);
}

}  // namespace
}  // namespace onesa::nn
