// Validation of the closed-form TimingModel against the detailed simulator,
// plus the throughput properties behind Fig. 8.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/array.hpp"
#include "sim/timing.hpp"
#include "tensor/ops.hpp"

namespace onesa::sim {
namespace {

using tensor::to_fixed;

ArrayConfig config(std::size_t rows, std::size_t cols, std::size_t macs) {
  ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.macs_per_pe = macs;
  return cfg;
}

struct ValidationCase {
  std::size_t rows, cols, macs;
  std::size_t m, k, n;
};

class GemmCycleValidation : public ::testing::TestWithParam<ValidationCase> {};

// The load-bearing test: the analytic model used for the Fig. 8 / Fig. 10 /
// Table IV sweeps must agree cycle-for-cycle with the detailed simulator.
TEST_P(GemmCycleValidation, AnalyticEqualsDetailed) {
  const auto& p = GetParam();
  const ArrayConfig cfg = config(p.rows, p.cols, p.macs);
  SystolicArraySim sim(cfg);
  TimingModel model(cfg);
  Rng rng(p.m + p.k + p.n);
  const auto a = to_fixed(tensor::random_uniform(p.m, p.k, rng));
  const auto b = to_fixed(tensor::random_uniform(p.k, p.n, rng));
  const auto detailed = sim.gemm(a, b).cycles;
  const auto analytic = model.gemm_cycles({p.m, p.k, p.n});
  EXPECT_EQ(analytic.fill_cycles, detailed.fill_cycles);
  EXPECT_EQ(analytic.compute_cycles, detailed.compute_cycles);
  EXPECT_EQ(analytic.drain_cycles, detailed.drain_cycles);
  EXPECT_EQ(analytic.memory_cycles, detailed.memory_cycles);
  EXPECT_EQ(analytic.total(), detailed.total());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmCycleValidation,
    ::testing::Values(ValidationCase{2, 2, 2, 2, 2, 2},
                      ValidationCase{2, 2, 2, 8, 8, 8},
                      ValidationCase{4, 4, 4, 9, 7, 10},
                      ValidationCase{4, 4, 16, 16, 64, 16},
                      ValidationCase{2, 4, 2, 5, 6, 5},
                      ValidationCase{4, 2, 4, 6, 3, 7},
                      ValidationCase{8, 8, 16, 32, 32, 32},
                      ValidationCase{8, 8, 2, 3, 100, 3}));

class MhpCycleValidation : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(MhpCycleValidation, AnalyticEqualsDetailed) {
  const auto& p = GetParam();  // m x k is the MHP matrix shape here
  const ArrayConfig cfg = config(p.rows, p.cols, p.macs);
  SystolicArraySim sim(cfg);
  TimingModel model(cfg);
  Rng rng(p.m * 13 + p.k);
  const auto x = to_fixed(tensor::random_uniform(p.m, p.k, rng));
  const auto k = to_fixed(tensor::random_uniform(p.m, p.k, rng));
  const auto b = to_fixed(tensor::random_uniform(p.m, p.k, rng));
  const auto detailed = sim.mhp(x, k, b).cycles;
  const auto analytic = model.mhp_cycles(p.m * p.k);
  EXPECT_EQ(analytic.total(), detailed.total());
  EXPECT_EQ(analytic.fill_cycles, detailed.fill_cycles);
  EXPECT_EQ(analytic.compute_cycles, detailed.compute_cycles);
  EXPECT_EQ(analytic.drain_cycles, detailed.drain_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MhpCycleValidation,
    ::testing::Values(ValidationCase{2, 2, 2, 4, 4, 0},
                      ValidationCase{4, 4, 4, 8, 8, 0},
                      ValidationCase{4, 4, 16, 3, 5, 0},
                      ValidationCase{8, 8, 16, 16, 16, 0},
                      ValidationCase{2, 4, 2, 7, 3, 0},
                      ValidationCase{3, 3, 4, 10, 10, 0}));

TEST(TimingModel, PeakGopsFormula) {
  // 8x8 PEs x 16 MACs at 200 MHz -> 1024 MACs/cycle -> 204.8 GOPS (MAC
  // convention).
  TimingModel model(config(8, 8, 16));
  EXPECT_NEAR(model.peak_gops(), 204.8, 1e-9);
}

TEST(TimingModel, ThroughputCliffForSmallMatrices) {
  // Fig. 8a: a small (32-dim) problem on a growing array stops scaling —
  // the achieved GOPS falls ever farther below peak.
  const GemmShape small{32, 32, 32};
  double prev_fraction = 1.0;
  for (std::size_t dim : {2, 4, 8, 16}) {
    TimingModel model(config(dim, dim, 16));
    const double fraction = model.gemm_gops(small) / model.peak_gops();
    EXPECT_LT(fraction, prev_fraction) << dim;
    prev_fraction = fraction;
  }
  // At 16x16 the utilization is tiny — the cliff.
  EXPECT_LT(prev_fraction, 0.15);
}

TEST(TimingModel, LargeMatricesApproachPeak) {
  TimingModel model(config(8, 8, 16));
  const double achieved = model.gemm_gops({512, 512, 512});
  EXPECT_GT(achieved / model.peak_gops(), 0.5);
}

TEST(TimingModel, MoreMacsMoreThroughput) {
  // Fig. 8: "the number of MACs exerts a more pronounced influence".
  double prev = 0.0;
  for (std::size_t macs : {2, 4, 8, 16, 32}) {
    TimingModel model(config(8, 8, macs));
    const double gops = model.gemm_gops({256, 256, 256});
    EXPECT_GT(gops, prev) << macs;
    prev = gops;
  }
}

TEST(TimingModel, NonlinearThroughputScalesWithDiagonalAndMacs) {
  const std::size_t elems = 128 * 128;
  double prev = 0.0;
  for (std::size_t dim : {2, 4, 8, 16}) {
    TimingModel model(config(dim, dim, 16));
    const double gnfs = model.nonlinear_gnfs(elems);
    EXPECT_GT(gnfs, prev) << dim;
    prev = gnfs;
  }
  prev = 0.0;
  for (std::size_t macs : {2, 4, 8, 16}) {
    TimingModel model(config(8, 8, macs));
    const double gnfs = model.nonlinear_gnfs(elems);
    EXPECT_GT(gnfs, prev) << macs;
    prev = gnfs;
  }
}

TEST(TimingModel, NonlinearSlowerThanPureMhp) {
  // IPF passes cost cycles on top of the MHP itself.
  TimingModel model(config(8, 8, 16));
  EXPECT_GT(model.nonlinear_cycles(1024).total(), model.mhp_cycles(1024).total());
}

TEST(TimingModel, IpfChargesTablePreloadWhenRequested) {
  TimingModel model(config(8, 8, 16));
  EXPECT_GT(model.ipf_cycles(1024, 256).ipf_cycles,
            model.ipf_cycles(1024, 0).ipf_cycles);
}

TEST(TimingModel, SecondsScalesInverselyWithClock) {
  ArrayConfig fast = config(4, 4, 4);
  fast.clock_mhz = 400.0;
  ArrayConfig slow = config(4, 4, 4);
  slow.clock_mhz = 100.0;
  const GemmShape shape{64, 64, 64};
  TimingModel fast_model(fast);
  TimingModel slow_model(slow);
  EXPECT_NEAR(slow_model.seconds(slow_model.gemm_cycles(shape)) /
                  fast_model.seconds(fast_model.gemm_cycles(shape)),
              4.0, 1e-9);
}

TEST(TimingModel, EmptyShapesRejected) {
  TimingModel model(config(4, 4, 4));
  EXPECT_THROW(model.gemm_cycles({0, 4, 4}), Error);
  EXPECT_THROW(model.mhp_cycles(0), Error);
}

TEST(TimingModel, PeakGnfsFormula) {
  // 8 diagonal PEs x 8 pairs/cycle at 200 MHz = 12.8 G results/s.
  TimingModel model(config(8, 8, 16));
  EXPECT_NEAR(model.peak_gnfs(), 12.8, 1e-9);
}

}  // namespace
}  // namespace onesa::sim
