// Tests for the conventional-accelerator baseline (SA + dedicated
// nonlinear function units) and its inflexibility semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "onesa/conventional.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using tensor::to_double;
using tensor::to_fixed;

ConventionalConfig bert_style_config() {
  ConventionalConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.function_units = {{cpwl::FunctionKind::kGelu, 8, 4},
                        {cpwl::FunctionKind::kExp, 8, 4}};
  return cfg;
}

TEST(Conventional, GemmMatchesReference) {
  ConventionalAccelerator accel(bert_style_config());
  Rng rng(1);
  const auto a = to_fixed(tensor::random_uniform(5, 6, rng));
  const auto b = to_fixed(tensor::random_uniform(6, 4, rng));
  EXPECT_EQ(accel.gemm(a, b).y, tensor::matmul(a, b));
}

TEST(Conventional, DedicatedUnitIsExact) {
  ConventionalAccelerator accel(bert_style_config());
  Rng rng(2);
  const auto x = to_fixed(tensor::random_uniform(4, 4, rng, -4.0, 4.0));
  const auto out = accel.elementwise(cpwl::FunctionKind::kGelu, x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double want =
        cpwl::eval_reference(cpwl::FunctionKind::kGelu, x.at_flat(i).to_double());
    EXPECT_NEAR(out.y.at_flat(i).to_double(), want, fixed::Fix16::resolution());
  }
}

TEST(Conventional, UnsupportedFunctionThrows) {
  // The flexibility gap ONE-SA closes: a BERT-style accelerator cannot run a
  // network that needs tanh.
  ConventionalAccelerator accel(bert_style_config());
  const auto x = to_fixed(tensor::Matrix{{1.0}});
  EXPECT_TRUE(accel.supports(cpwl::FunctionKind::kGelu));
  EXPECT_FALSE(accel.supports(cpwl::FunctionKind::kTanh));
  EXPECT_THROW(accel.elementwise(cpwl::FunctionKind::kTanh, x),
               UnsupportedFunctionError);
}

TEST(Conventional, HandoffStallsCharged) {
  ConventionalConfig cfg = bert_style_config();
  cfg.unit_handoff_cycles = 100;
  ConventionalAccelerator accel(cfg);
  const auto x = to_fixed(tensor::Matrix{{1.0, 2.0}});
  const auto out = accel.elementwise(cpwl::FunctionKind::kGelu, x);
  EXPECT_GE(out.cycles.memory_cycles, 200u);  // both crossings
}

TEST(Conventional, PositiveOnlyFunctionsClampNonPositiveInputs) {
  ConventionalConfig cfg = bert_style_config();
  cfg.function_units.push_back({cpwl::FunctionKind::kRsqrt, 8, 4});
  ConventionalAccelerator accel(cfg);
  const auto x = to_fixed(tensor::Matrix{{0.0, 4.0}});
  const auto out = accel.elementwise(cpwl::FunctionKind::kRsqrt, x);
  // rsqrt(clamp) saturates to the INT16 max rather than crashing.
  EXPECT_GT(out.y(0, 0).to_double(), 10.0);
  EXPECT_NEAR(out.y(0, 1).to_double(), 0.5, 0.01);
}

TEST(Conventional, ThroughputScalesWithUnitWidth) {
  ConventionalConfig narrow = bert_style_config();
  narrow.function_units[0].width = 1;
  ConventionalConfig wide = bert_style_config();
  wide.function_units[0].width = 16;
  ConventionalAccelerator a(narrow);
  ConventionalAccelerator b(wide);
  Rng rng(3);
  const auto x = to_fixed(tensor::random_uniform(8, 8, rng));
  const auto slow = a.elementwise(cpwl::FunctionKind::kGelu, x);
  const auto fast = b.elementwise(cpwl::FunctionKind::kGelu, x);
  EXPECT_GT(slow.cycles.total(), fast.cycles.total());
}

}  // namespace
}  // namespace onesa
