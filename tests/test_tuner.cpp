// Tests for the granularity auto-tuner (the paper's §V-B NAS extension).
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth.hpp"
#include "nn/graph.hpp"
#include "nn/models.hpp"
#include "train/granularity_tuner.hpp"
#include "train/trainer.hpp"

namespace onesa::train {
namespace {

OneSaConfig small_config() {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = ExecutionMode::kAnalytic;
  return cfg;
}

TEST(GranularityTuner, PicksCoarsestAcceptable) {
  // Synthetic accuracy curve: flat above 0.25, dropping below tolerance for
  // coarser settings.
  auto evaluate = [](OneSaAccelerator& accel) {
    return accel.config().granularity <= 0.25 ? 0.9 : 0.5;
  };
  const auto result = tune_granularity(evaluate, small_config(), 0.02);
  EXPECT_DOUBLE_EQ(result.granularity, 0.25);
  EXPECT_DOUBLE_EQ(result.tuned_accuracy, 0.9);
  EXPECT_DOUBLE_EQ(result.baseline_accuracy, 0.9);
  // It probed the coarser failures first (1.0, 0.5), then accepted 0.25.
  ASSERT_EQ(result.explored.size(), 3u);
  EXPECT_DOUBLE_EQ(result.explored[0].first, 1.0);
  EXPECT_DOUBLE_EQ(result.explored[1].first, 0.5);
}

TEST(GranularityTuner, AcceptsCoarsestWhenInsensitive) {
  auto evaluate = [](OneSaAccelerator&) { return 0.8; };
  const auto result = tune_granularity(evaluate, small_config(), 0.01);
  EXPECT_DOUBLE_EQ(result.granularity, 1.0);
  EXPECT_EQ(result.explored.size(), 1u);
}

TEST(GranularityTuner, ThrowsWhenNothingMeetsTolerance) {
  // Accuracy strictly improves below every probe: baseline (finest/2) is
  // always better than anything on the ladder by more than the tolerance.
  auto evaluate = [](OneSaAccelerator& accel) {
    return 1.0 - accel.config().granularity;
  };
  EXPECT_THROW(tune_granularity(evaluate, small_config(), 0.001), ConfigError);
}

TEST(GranularityTuner, TableBytesReflectChoice) {
  auto evaluate = [](OneSaAccelerator& accel) {
    return accel.config().granularity <= 0.5 ? 1.0 : 0.0;
  };
  const auto result = tune_granularity(evaluate, small_config(), 0.01);
  EXPECT_DOUBLE_EQ(result.granularity, 0.5);
  // GELU domain [-8, 8] at 0.5 -> 32 segments x 4 bytes.
  EXPECT_EQ(result.table_bytes, 128u);
}

TEST(GranularityTuner, EndToEndOnTrainedGcn) {
  // Real model: the GCN is granularity-insensitive (ReLU is exact under
  // CPWL), so the tuner should select the coarsest setting.
  Rng rng(1);
  data::GraphTaskSpec task_spec;
  task_spec.nodes = 48;
  task_spec.intra_edge_prob = 0.25;
  const auto task = data::make_graph_task(task_spec, rng);
  nn::GcnSpec spec;
  spec.features = task_spec.features;
  const auto adj = nn::normalized_adjacency(task_spec.nodes, task.edges);
  auto model = nn::make_gcn_classifier(adj, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.lr = 0.02;
  cfg.use_adam = true;
  train_gcn(*model, task, cfg);

  const auto result = tune_granularity(
      [&](OneSaAccelerator& accel) { return evaluate_gcn_accel(*model, accel, task); },
      small_config(), /*tolerance=*/0.02);
  EXPECT_DOUBLE_EQ(result.granularity, 1.0);
  EXPECT_GE(result.tuned_accuracy, result.baseline_accuracy - 0.02);
}

}  // namespace
}  // namespace onesa::train
