// Tests for the network-level scheduler (motivation experiment machinery).
#include <gtest/gtest.h>

#include "nn/scheduler.hpp"

namespace onesa::nn {
namespace {

sim::TimingModel timing() {
  sim::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  cfg.macs_per_pe = 4;
  return sim::TimingModel(cfg);
}

WorkloadTrace alternating_trace() {
  WorkloadTrace t;
  t.name = "alt";
  t.ops.push_back({TraceOp::Kind::kGemm, 16, 16, 16});
  t.ops.push_back({TraceOp::Kind::kRelu, 16, 0, 16});
  t.ops.push_back({TraceOp::Kind::kGemm, 16, 16, 16});
  t.ops.push_back({TraceOp::Kind::kRelu, 16, 0, 16});
  return t;
}

TEST(Scheduler, OneSaHasNoHandoffsAndFullArrayUtilization) {
  const auto report = schedule_onesa(alternating_trace(), timing());
  EXPECT_EQ(report.handoff_cycles, 0u);
  EXPECT_DOUBLE_EQ(report.array_utilization(), 1.0);
  EXPECT_DOUBLE_EQ(report.unit_utilization(), 0.0);
  EXPECT_EQ(report.total_cycles, report.gemm_cycles + report.nonlinear_cycles);
}

TEST(Scheduler, OneSaTotalMatchesTraceEstimator) {
  const auto trace = alternating_trace();
  const auto report = schedule_onesa(trace, timing());
  EXPECT_EQ(report.total_cycles, estimate_trace_cycles(trace, timing()).total());
}

TEST(Scheduler, ConventionalPaysHandoffPerTransition) {
  // gemm -> relu -> gemm -> relu: 3 transitions.
  const auto report =
      schedule_conventional(alternating_trace(), timing(), 8, /*handoff=*/100);
  EXPECT_EQ(report.handoff_cycles, 300u);
}

TEST(Scheduler, ConventionalNoHandoffForPureGemmTrace) {
  WorkloadTrace t;
  t.ops.push_back({TraceOp::Kind::kGemm, 8, 8, 8});
  t.ops.push_back({TraceOp::Kind::kGemm, 8, 8, 8});
  const auto report = schedule_conventional(t, timing());
  EXPECT_EQ(report.handoff_cycles, 0u);
  EXPECT_EQ(report.unit_busy_cycles, 0u);
}

TEST(Scheduler, ConventionalUnitsIdleDuringGemm) {
  const auto report = schedule_conventional(alternating_trace(), timing());
  EXPECT_LT(report.array_utilization(), 1.0);
  EXPECT_GT(report.array_utilization(), 0.0);
  EXPECT_LT(report.unit_utilization(), 0.5);
  EXPECT_GT(report.unit_utilization(), 0.0);
}

TEST(Scheduler, RealTraceConventionalUnitUtilizationIsLow) {
  // The paper's point: dedicated-unit silicon idles most of the time
  // because GEMMs dominate.
  const auto trace = bert_base_trace(32);
  const auto report = schedule_conventional(trace, timing());
  EXPECT_LT(report.unit_utilization(), 0.25);
}

TEST(Scheduler, LatencyConversion) {
  ScheduleReport r;
  r.total_cycles = 200000;
  EXPECT_DOUBLE_EQ(r.latency_ms(200.0), 1.0);
}

}  // namespace
}  // namespace onesa::nn
