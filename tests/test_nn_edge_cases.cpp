// Edge-case and error-path tests for the NN layers: bad shapes must throw
// early with clear messages, and the less-traveled accel paths (strided
// conv, pooled reductions, multi-channel inputs) must stay faithful to the
// reference forward.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/graph.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"

namespace onesa::nn {
namespace {

using tensor::Matrix;
using tensor::to_double;
using tensor::to_fixed;

OneSaConfig accel_config() {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.granularity = 0.125;
  cfg.mode = ExecutionMode::kAnalytic;
  return cfg;
}

TEST(EdgeCases, AttentionRejectsIndivisibleHeads) {
  Rng rng(1);
  EXPECT_THROW(MultiHeadSelfAttention(10, 3, rng), Error);
}

TEST(EdgeCases, AttentionRejectsWrongWidth) {
  Rng rng(2);
  MultiHeadSelfAttention layer(8, 2, rng);
  EXPECT_THROW(layer.forward(Matrix(4, 6)), ShapeError);
}

TEST(EdgeCases, MaxPoolRejectsNonDividingWindow) {
  EXPECT_THROW(MaxPool2d(1, 5, 5, 2), Error);
  EXPECT_NO_THROW(MaxPool2d(1, 6, 6, 3));
}

TEST(EdgeCases, MaxPool3x3Window) {
  Rng rng(3);
  MaxPool2d layer(2, 6, 6, 3);
  const Matrix x = to_double(to_fixed(tensor::random_uniform(2, 72, rng)));
  const Matrix ref = layer.forward(x);
  EXPECT_EQ(ref.cols(), 2u * 2u * 2u);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 1e-12);
}

TEST(EdgeCases, BatchNormRejectsWrongColumnCount) {
  BatchNorm2d layer(2, 3, 3);
  EXPECT_THROW(layer.forward(Matrix(4, 17)), ShapeError);
}

TEST(EdgeCases, LayerNormRejectsWrongFeatures) {
  LayerNorm layer(8);
  EXPECT_THROW(layer.forward(Matrix(2, 9)), ShapeError);
}

TEST(EdgeCases, GraphConvRejectsWrongNodeCount) {
  Rng rng(4);
  const auto adj = normalized_adjacency(4, {{0, 1}});
  GraphConv layer(adj, 3, 2, rng);
  EXPECT_THROW(layer.forward(Matrix(5, 3)), ShapeError);
}

TEST(EdgeCases, GapRejectsWrongLayout) {
  GlobalAvgPool layer(2, 3, 3);
  EXPECT_THROW(layer.forward(Matrix(1, 17)), ShapeError);
}

TEST(EdgeCases, StridedConvAccelMatchesReference) {
  Rng rng(5);
  tensor::ConvShape shape{2, 8, 8, 3, 2, 1};  // stride 2
  Conv2d layer(shape, 3, rng);
  const Matrix x = tensor::random_uniform(2, 128, rng, -1.0, 1.0);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.05);
}

TEST(EdgeCases, SequenceMeanPoolAccelMatchesReference) {
  Rng rng(6);
  SequenceMeanPool layer;
  const Matrix x = to_double(to_fixed(tensor::random_uniform(8, 6, rng)));
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.01);
}

TEST(EdgeCases, MultiChannelCnnEndToEnd) {
  // 3-channel (RGB-like) input through the full residual CNN, both paths.
  Rng rng(7);
  CnnSpec spec;
  spec.in_channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.conv1_channels = 4;
  spec.conv2_channels = 4;
  auto model = make_cnn_classifier(spec, rng);
  const Matrix x = tensor::random_uniform(2, 3 * 64, rng, -1.0, 1.0);
  set_training_mode(*model, false);
  const Matrix ref = model->forward(x);
  EXPECT_EQ(ref.cols(), spec.classes);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(model->forward_accel(accel, to_fixed(x)));
  // Deep INT16 chain: only check that predictions track.
  EXPECT_EQ(got.rows(), ref.rows());
  EXPECT_EQ(got.cols(), ref.cols());
}

TEST(EdgeCases, SetTrainingReachesNestedBatchNorms) {
  Rng rng(8);
  CnnSpec spec;
  spec.height = 8;
  spec.width = 8;
  auto model = make_cnn_classifier(spec, rng);
  const Matrix x = tensor::random_uniform(4, 64, rng);
  // Train-mode forward uses batch stats: two different batches give
  // different normalization. Eval mode must give identical outputs for the
  // same input regardless of other calls in between.
  set_training_mode(*model, false);
  const Matrix a = model->forward(x);
  model->forward(tensor::random_uniform(4, 64, rng));
  const Matrix b = model->forward(x);
  EXPECT_LT(tensor::max_abs_distance(a, b), 1e-12)
      << "BatchNorm inside Residual still in training mode";
}

TEST(EdgeCases, LinearRejectsWrongInputWidth) {
  Rng rng(9);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Matrix(3, 5)), Error);
}

TEST(EdgeCases, EmbeddingRejectsMultiRowIds) {
  Rng rng(10);
  Embedding layer(8, 4, rng);
  EXPECT_THROW(layer.forward(Matrix(2, 3)), ShapeError);
}

}  // namespace
}  // namespace onesa::nn
