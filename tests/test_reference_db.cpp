// Tests for the Table IV reference-constant database.
#include <gtest/gtest.h>

#include "fpga/reference_db.hpp"

namespace onesa::fpga {
namespace {

TEST(ReferenceDb, AllGeneralPurposeRowsPresent) {
  for (Workload w : {Workload::kResNet50, Workload::kBertBase, Workload::kGcn}) {
    const auto rows = references_for(w);
    // CPU, GPU, SoC at minimum.
    EXPECT_GE(rows.size(), 3u) << workload_name(w);
  }
}

TEST(ReferenceDb, CpuBaselineSpeedupIsOne) {
  const auto& cpu = cpu_baseline(Workload::kResNet50);
  EXPECT_DOUBLE_EQ(cpu.latency_ms / cpu.latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(cpu.latency_ms, 42.51);
}

TEST(ReferenceDb, PublishedEfficiencyValues) {
  // Spot-check the T/P column of Table IV.
  const auto& cpu = cpu_baseline(Workload::kResNet50);
  EXPECT_NEAR(cpu.efficiency(), 0.83, 0.01);
  for (const auto& e : reference_table()) {
    if (e.spec == "3090Ti" && e.workload == Workload::kGcn) {
      EXPECT_NEAR(e.efficiency(), 5.68, 0.01);
    }
    if (e.spec == "AGX ORIN" && e.workload == Workload::kBertBase) {
      EXPECT_NEAR(e.efficiency(), 18.26, 0.01);
    }
    if (e.spec == "NPE") {
      EXPECT_NEAR(e.efficiency(), 20.27, 0.01);
    }
  }
}

TEST(ReferenceDb, AcceleratorsOnlyOnTheirWorkloads) {
  // Angel-eye and the VGG16 design are ResNet-only rows; NPE and FTRANS are
  // BERT-only; no accelerator row exists for GCN (§V-D).
  std::size_t gcn_accels = 0;
  for (const auto& e : references_for(Workload::kGcn)) {
    if (e.processor != "Intel CPU" && e.processor != "NVIDIA GPU" &&
        e.processor != "NVIDIA SoC") {
      ++gcn_accels;
    }
  }
  EXPECT_EQ(gcn_accels, 0u);

  bool npe_on_bert = false;
  for (const auto& e : references_for(Workload::kBertBase)) {
    if (e.spec == "NPE") npe_on_bert = true;
  }
  EXPECT_TRUE(npe_on_bert);
}

TEST(ReferenceDb, GpuFastestLatencyPerWorkload) {
  for (Workload w : {Workload::kResNet50, Workload::kBertBase, Workload::kGcn}) {
    const auto rows = references_for(w);
    double gpu_latency = 0.0;
    for (const auto& e : rows) {
      if (e.processor == "NVIDIA GPU") gpu_latency = e.latency_ms;
    }
    for (const auto& e : rows) {
      EXPECT_GE(e.latency_ms, gpu_latency) << e.spec;
    }
  }
}

}  // namespace
}  // namespace onesa::fpga
