// The memory tier under the zero-allocation serve path: MemoryStack bump
// arenas (alignment, stride-padded views, reset/reuse, boundary-guard
// corruption detection) and the recycling buffer pool (size-class rounding,
// cross-thread recycling — the TSan job runs this binary to pin the
// handoff), plus the operator-new counting hook the allocation bench
// measures with.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/alloc_count.hpp"
#include "common/error.hpp"
#include "tensor/arena.hpp"
#include "tensor/buffer_pool.hpp"
#include "tensor/matrix.hpp"

namespace onesa::tensor {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % MemoryStack::kAlignment == 0;
}

TEST(MemoryStack, EveryAllocationIs64ByteAligned) {
  MemoryStack arena;
  for (std::size_t bytes : {1u, 7u, 63u, 64u, 65u, 1000u, 4096u}) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned64(p)) << bytes << "-byte block misaligned";
  }
  double* span = arena.allocate_span<double>(17);
  EXPECT_TRUE(aligned64(span));
}

TEST(MemoryStack, PaddedMatrixViewAlignsEveryRowStart) {
  MemoryStack arena;
  // 5 doubles = 40 bytes per row; the padded stride must round up to the
  // 64-byte quantum (8 doubles) so every row start stays aligned.
  MatrixViewT<double> v = arena.allocate_matrix<double>(3, 5);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 5u);
  EXPECT_EQ(v.stride(), 8u);
  EXPECT_FALSE(v.contiguous());
  for (std::size_t r = 0; r < v.rows(); ++r) EXPECT_TRUE(aligned64(v.row(r)));
  // Element access respects the stride: rows do not overlap.
  for (std::size_t r = 0; r < v.rows(); ++r)
    for (std::size_t c = 0; c < v.cols(); ++c) v(r, c) = static_cast<double>(r * 100 + c);
  for (std::size_t r = 0; r < v.rows(); ++r)
    for (std::size_t c = 0; c < v.cols(); ++c)
      EXPECT_EQ(v(r, c), static_cast<double>(r * 100 + c));
}

TEST(MemoryStack, UnpaddedMatrixViewIsContiguous) {
  MemoryStack arena;
  MatrixViewT<double> v = arena.allocate_matrix<double>(4, 5, /*pad_rows=*/false);
  EXPECT_EQ(v.stride(), 5u);
  EXPECT_TRUE(v.contiguous());
  EXPECT_TRUE(aligned64(v.data()));
}

TEST(MemoryStack, GrowthKeepsLiveBlocksValid) {
  MemoryStack arena(/*capacity_bytes=*/128);
  int* first = arena.allocate_span<int>(16);
  for (int i = 0; i < 16; ++i) first[i] = i * 3;
  // Force several growth chunks past the seed slab.
  for (int round = 0; round < 8; ++round) arena.allocate(96 * 1024);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(first[i], i * 3);
}

TEST(MemoryStack, ResetCoalescesAndWarmArenaReusesOneSlab) {
  MemoryStack arena;
  for (int i = 0; i < 5; ++i) arena.allocate(48 * 1024);  // multi-chunk growth
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.allocations(), 0u);
  const std::size_t warmed = arena.capacity();
  // A warmed arena serves the same working set from the same slab: identical
  // bump sequence, identical pointers, no capacity change.
  void* p1 = arena.allocate(48 * 1024);
  arena.reset();
  void* p2 = arena.allocate(48 * 1024);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(arena.capacity(), warmed);
  EXPECT_EQ(arena.allocations(), 1u);
}

TEST(MemoryStack, HighWaterTracksPeakAndShrinkToDropsCapacity) {
  MemoryStack arena;
  arena.allocate(1024);
  arena.reset();
  arena.allocate(4096);
  EXPECT_GE(arena.high_water(), 4096u);
  arena.reset();
  arena.shrink_to(1024);
  EXPECT_LE(arena.capacity(), 1024u);
  arena.shrink_to(0);
  EXPECT_EQ(arena.capacity(), 0u);
  // Still usable after a full shrink.
  EXPECT_NE(arena.allocate(64), nullptr);
}

TEST(MemoryStack, BoundaryGuardCatchesOverflowAndResetThrows) {
  MemoryStack arena(/*capacity_bytes=*/0, /*boundary_fill=*/true);
  unsigned char* block = arena.allocate_span<unsigned char>(64);
  EXPECT_EQ(arena.check(), 0u);
  // Write one byte past the block. The guard zone lives INSIDE the arena's
  // own slab (the next 64 bytes belong to this arena), so this is exactly
  // the overflow ASan cannot see — and the one the guards exist to catch.
  block[64] = 0x00;
  EXPECT_EQ(arena.check(), 1u);
  EXPECT_THROW(arena.reset(), onesa::Error);
  // Healing the guard clears the fault; reset succeeds again.
  block[64] = MemoryStack::kFillByte;
  EXPECT_EQ(arena.check(), 0u);
  EXPECT_NO_THROW(arena.reset());
}

TEST(MemoryStack, UnderflowIsCaughtToo) {
  MemoryStack arena(/*capacity_bytes=*/0, /*boundary_fill=*/true);
  unsigned char* block = arena.allocate_span<unsigned char>(64);
  *(block - 1) = 0x00;  // one byte before the block: the leading guard
  EXPECT_EQ(arena.check(), 1u);
  *(block - 1) = MemoryStack::kFillByte;
  EXPECT_NO_THROW(arena.reset());
}

TEST(MemoryStack, BoundaryFillOffMeansNothingToCheck) {
  MemoryStack arena(/*capacity_bytes=*/0, /*boundary_fill=*/false);
  arena.allocate(128);
  EXPECT_FALSE(arena.boundary_fill_enabled());
  EXPECT_EQ(arena.check(), 0u);
  EXPECT_NO_THROW(arena.reset());
}

TEST(BufferPool, RecyclesWithinAThread) {
  if (!pool::enabled()) GTEST_SKIP() << "pool disabled via ONESA_BUFFER_POOL=0";
  void* p = pool::allocate(1000);
  EXPECT_TRUE(aligned64(p));
  pool::deallocate(p, 1000);
  const std::uint64_t hits_before = pool::stats().hits;
  // Same size class (1000 and 1024 both round to 1 KiB): must be a cache hit
  // returning the very block just freed.
  void* q = pool::allocate(1024);
  EXPECT_EQ(p, q);
  EXPECT_GT(pool::stats().hits, hits_before);
  pool::deallocate(q, 1024);
}

TEST(BufferPool, PooledMatricesReuseCapacity) {
  if (!pool::enabled()) GTEST_SKIP() << "pool disabled via ONESA_BUFFER_POOL=0";
  const double* data_first = nullptr;
  {
    Matrix a(8, 8, 1.0);
    data_first = a.data().data();
  }  // freed into the thread cache
  Matrix b(8, 8, 2.0);  // same class: recycled storage
  EXPECT_EQ(b.data().data(), data_first);
  EXPECT_EQ(b(7, 7), 2.0);
}

// Cross-thread recycling under contention: every thread allocates pooled
// blocks and frees blocks allocated by OTHER threads (the serve tier's
// ownership handoff — workers allocate results, the client frees them).
// The TSan CI job runs this binary; a racy shelf would fail here.
TEST(BufferPool, ConcurrentCrossThreadRecycling) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIters = 400;
  std::mutex m;
  std::vector<std::pair<void*, std::size_t>> shared;  // blocks in flight
  const std::uint64_t returns_before = pool::stats().returns;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const std::size_t bytes = 64u << ((t + i) % 5);  // 64B..1KiB classes
        void* p = pool::allocate(bytes);
        static_cast<unsigned char*>(p)[0] = static_cast<unsigned char>(t);
        static_cast<unsigned char*>(p)[bytes - 1] = static_cast<unsigned char>(i);
        std::vector<std::pair<void*, std::size_t>> to_free;
        {
          std::lock_guard<std::mutex> lock(m);
          shared.emplace_back(p, bytes);
          // Free up to two blocks somebody (often another thread) parked.
          for (int k = 0; k < 2 && !shared.empty(); ++k) {
            to_free.push_back(shared.back());
            shared.pop_back();
          }
        }
        for (auto& [ptr, sz] : to_free) pool::deallocate(ptr, sz);
      }
      pool::flush_thread_cache();
    });
  }
  for (std::thread& t : threads) t.join();
  for (auto& [ptr, sz] : shared) pool::deallocate(ptr, sz);
  if (pool::enabled()) {
    EXPECT_GT(pool::stats().returns, returns_before);
  }
}

TEST(BufferPool, DisableTakesEffectAndRoundTripsSafely) {
  if (!pool::enabled()) GTEST_SKIP() << "pool disabled via ONESA_BUFFER_POOL=0";
  // A block allocated while ENABLED then freed while DISABLED (and the
  // reverse) must round-trip: class-size rounding is unconditional.
  void* pooled = pool::allocate(256);
  pool::set_enabled(false);
  pool::deallocate(pooled, 256);
  void* heaped = pool::allocate(256);
  pool::set_enabled(true);
  pool::deallocate(heaped, 256);
}

TEST(AllocCount, ThreadLocalCountersTrackOperatorNew) {
  const std::uint64_t allocs_before = alloccount::thread_allocations();
  const std::uint64_t frees_before = alloccount::thread_deallocations();
  auto* p = new int(42);
  EXPECT_GT(alloccount::thread_allocations(), allocs_before);
  delete p;
  EXPECT_GT(alloccount::thread_deallocations(), frees_before);
  // Another thread's traffic never lands on this thread's counters. (The
  // std::thread object itself allocates its shared state on THIS thread —
  // a handful of allocations — but the child's 100 must not appear here.)
  const std::uint64_t mine = alloccount::thread_allocations();
  std::thread([] {
    for (int i = 0; i < 100; ++i) delete new int(i);
  }).join();
  EXPECT_LT(alloccount::thread_allocations() - mine, 100u);
}

}  // namespace
}  // namespace onesa::tensor
