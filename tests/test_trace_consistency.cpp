// Integration invariant: the workload-trace cycle estimator (used by the
// Table IV / Fig. 1 benches on paper-scale shapes) charges *exactly* the
// cycles the accelerator façade accrues when executing the same ops on real
// data. Any drift between the estimator's decompositions and the
// accelerator's implementations fails here.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/workload.hpp"
#include "onesa/accelerator.hpp"
#include "tensor/ops.hpp"

namespace onesa::nn {
namespace {

using tensor::to_fixed;

struct Geometry {
  std::size_t rows, cols, macs;
};

class TraceConsistency : public ::testing::TestWithParam<Geometry> {
 protected:
  OneSaConfig config() const {
    OneSaConfig cfg;
    cfg.array.rows = GetParam().rows;
    cfg.array.cols = GetParam().cols;
    cfg.array.macs_per_pe = GetParam().macs;
    cfg.mode = ExecutionMode::kAnalytic;
    return cfg;
  }

  std::uint64_t estimated(const TraceOp& op) const {
    WorkloadTrace one{"one", {op}};
    return estimate_trace_cycles(one, sim::TimingModel(config().array)).total();
  }
};

TEST_P(TraceConsistency, Gemm) {
  OneSaAccelerator accel(config());
  Rng rng(1);
  const auto a = to_fixed(tensor::random_uniform(9, 11, rng));
  const auto b = to_fixed(tensor::random_uniform(11, 7, rng));
  accel.gemm(a, b);
  EXPECT_EQ(accel.lifetime_cycles().total(),
            estimated({TraceOp::Kind::kGemm, 9, 11, 7}));
}

TEST_P(TraceConsistency, Softmax) {
  OneSaAccelerator accel(config());
  Rng rng(2);
  const auto x = to_fixed(tensor::random_uniform(6, 10, rng, -3.0, 3.0));
  accel.softmax_rows(x);
  EXPECT_EQ(accel.lifetime_cycles().total(),
            estimated({TraceOp::Kind::kSoftmax, 6, 0, 10}));
}

TEST_P(TraceConsistency, LayerNorm) {
  OneSaAccelerator accel(config());
  Rng rng(3);
  const auto x = to_fixed(tensor::random_uniform(5, 12, rng, -2.0, 2.0));
  const auto gamma = to_fixed(tensor::Matrix(1, 12, 1.0));
  const auto beta = to_fixed(tensor::Matrix(1, 12, 0.0));
  accel.layernorm_rows(x, gamma, beta);
  EXPECT_EQ(accel.lifetime_cycles().total(),
            estimated({TraceOp::Kind::kLayerNorm, 5, 0, 12}));
}

TEST_P(TraceConsistency, Elementwise) {
  OneSaAccelerator accel(config());
  Rng rng(4);
  const auto x = to_fixed(tensor::random_uniform(7, 9, rng, -4.0, 4.0));
  accel.elementwise(cpwl::FunctionKind::kGelu, x);
  EXPECT_EQ(accel.lifetime_cycles().total(),
            estimated({TraceOp::Kind::kGelu, 7, 0, 9}));
}

TEST_P(TraceConsistency, ParameterizedMhp) {
  OneSaAccelerator accel(config());
  Rng rng(5);
  const auto x = to_fixed(tensor::random_uniform(8, 8, rng));
  accel.mhp(x, x, x);
  EXPECT_EQ(accel.lifetime_cycles().total(), estimated({TraceOp::Kind::kAdd, 8, 0, 8}));
}

TEST_P(TraceConsistency, Reduction) {
  OneSaAccelerator accel(config());
  Rng rng(6);
  const auto x = to_fixed(tensor::random_uniform(16, 4, rng));
  accel.reduce_rows_max(x);
  EXPECT_EQ(accel.lifetime_cycles().total(),
            estimated({TraceOp::Kind::kMaxPool, 16, 0, 4}));
}

INSTANTIATE_TEST_SUITE_P(Geometries, TraceConsistency,
                         ::testing::Values(Geometry{4, 4, 4}, Geometry{8, 8, 16},
                                           Geometry{2, 4, 2}, Geometry{8, 4, 8}));

}  // namespace
}  // namespace onesa::nn
