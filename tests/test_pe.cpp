// Tests for the processing-element microarchitecture (Fig. 7).
#include <gtest/gtest.h>

#include "sim/pe.hpp"

namespace onesa::sim {
namespace {

using fixed::Fix16;

Flit flit(std::initializer_list<double> values) {
  Flit f;
  for (double v : values) f.push_back(Fix16::from_double(v));
  return f;
}

TEST(ProcessingElement, ControlLogicMapping) {
  ProcessingElement pe(4);
  pe.set_mode(PeMode::kGemm);
  EXPECT_TRUE(pe.control_c1());
  EXPECT_TRUE(pe.control_c2());
  pe.set_mode(PeMode::kMhpCompute);
  EXPECT_FALSE(pe.control_c1());
  EXPECT_TRUE(pe.control_c2());
  pe.set_mode(PeMode::kMhpTransmit);
  EXPECT_TRUE(pe.control_c1());
  EXPECT_FALSE(pe.control_c2());
}

TEST(ProcessingElement, GemmAccumulatesDotProduct) {
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kGemm);
  pe.cycle(flit({1.0, 2.0}), flit({3.0, 4.0}));  // 1*3 + 2*4 = 11
  pe.cycle(flit({0.5, 0.5}), flit({2.0, 2.0}));  // + 2 = 13
  EXPECT_DOUBLE_EQ(pe.gemm_result().to_double(), 13.0);
}

TEST(ProcessingElement, GemmForwardsBothDirections) {
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kGemm);
  const Flit west = flit({1.0, 2.0});
  const Flit north = flit({3.0, 4.0});
  pe.cycle(west, north);
  EXPECT_EQ(pe.east(), west);
  EXPECT_EQ(pe.south(), north);
}

TEST(ProcessingElement, BubblesDoNotCompute) {
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kGemm);
  pe.cycle(flit({1.0, 1.0}), {});  // north bubble
  pe.cycle({}, flit({1.0, 1.0}));  // west bubble
  EXPECT_DOUBLE_EQ(pe.gemm_result().to_double(), 0.0);
  EXPECT_EQ(pe.active_cycles(), 0u);
}

TEST(ProcessingElement, MhpComputePairsLanes) {
  ProcessingElement pe(4);
  pe.set_mode(PeMode::kMhpCompute);
  // Two (x, 1) pairs against (k, b): y0 = 2*3 + 1*1 = 7, y1 = -1*0.5 + 1*2 = 1.5.
  pe.cycle(flit({2.0, 1.0, -1.0, 1.0}), flit({3.0, 1.0, 0.5, 2.0}));
  ASSERT_EQ(pe.mhp_outputs().size(), 2u);
  EXPECT_DOUBLE_EQ(pe.mhp_outputs()[0].to_double(), 7.0);
  EXPECT_DOUBLE_EQ(pe.mhp_outputs()[1].to_double(), 1.5);
}

TEST(ProcessingElement, MhpComputeDoesNotForward) {
  // Computation PE: values are used once and terminate (C1 off).
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kMhpCompute);
  pe.cycle(flit({1.0, 1.0}), flit({2.0, 0.0}));
  EXPECT_TRUE(pe.east().empty());
  EXPECT_TRUE(pe.south().empty());
}

TEST(ProcessingElement, MhpTransmitForwardsWithoutComputing) {
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kMhpTransmit);
  const Flit west = flit({5.0, 1.0});
  const Flit north = flit({2.0, 3.0});
  pe.cycle(west, north);
  EXPECT_EQ(pe.east(), west);
  EXPECT_EQ(pe.south(), north);
  EXPECT_TRUE(pe.mhp_outputs().empty());
  EXPECT_EQ(pe.mac_ops(), 0u);
}

TEST(ProcessingElement, ForwardingHasOneCycleDelay) {
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kMhpTransmit);
  const Flit a = flit({1.0, 1.0});
  const Flit b = flit({2.0, 2.0});
  pe.cycle(a, {});
  EXPECT_EQ(pe.east(), a);
  pe.cycle(b, {});
  EXPECT_EQ(pe.east(), b);  // previous value replaced each cycle
}

TEST(ProcessingElement, SetModeClearsDatapath) {
  ProcessingElement pe(2);
  pe.set_mode(PeMode::kGemm);
  pe.cycle(flit({1.0, 1.0}), flit({1.0, 1.0}));
  EXPECT_GT(pe.gemm_result().to_double(), 0.0);
  pe.set_mode(PeMode::kMhpCompute);
  EXPECT_DOUBLE_EQ(pe.gemm_result().to_double(), 0.0);
  EXPECT_TRUE(pe.east().empty());
}

TEST(ProcessingElement, MacOpCounting) {
  ProcessingElement pe(4);
  pe.set_mode(PeMode::kGemm);
  pe.cycle(flit({1.0, 1.0, 1.0, 1.0}), flit({1.0, 1.0, 1.0, 1.0}));
  EXPECT_EQ(pe.mac_ops(), 4u);
  pe.set_mode(PeMode::kMhpCompute);
  pe.cycle(flit({1.0, 1.0}), flit({1.0, 1.0}));
  EXPECT_EQ(pe.mac_ops(), 6u);  // +2 for one pair
}

TEST(ProcessingElement, NeedsAtLeastOneLane) {
  EXPECT_THROW(ProcessingElement(0), Error);
}

}  // namespace
}  // namespace onesa::sim
