// Finite-difference gradient checks for every trainable layer. These pin
// down the backward passes that the Table III training pipeline relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/graph.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"

namespace onesa::nn {
namespace {

using tensor::Matrix;

/// Scalar loss used by all checks: L = sum of squares of the output / 2, so
/// dL/dy = y.
double loss_of(const Matrix& y) {
  double total = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) total += y.at_flat(i) * y.at_flat(i);
  return total / 2.0;
}

/// Check dL/dx (returned by backward) and every parameter gradient against
/// central finite differences.
void check_gradients(Layer& layer, const Matrix& x, double tolerance = 2e-4,
                     double eps = 1e-5) {
  // Analytic gradients.
  for (auto* p : layer.params()) p->zero_grad();
  const Matrix y = layer.forward(x);
  const Matrix grad_in = layer.backward(y);  // dL/dy = y

  // Input gradient via finite differences.
  Matrix x_fd = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x_fd.at_flat(i) = x.at_flat(i) + eps;
    const double up = loss_of(layer.forward(x_fd));
    x_fd.at_flat(i) = x.at_flat(i) - eps;
    const double down = loss_of(layer.forward(x_fd));
    x_fd.at_flat(i) = x.at_flat(i);
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_in.at_flat(i), numeric, tolerance) << "input grad " << i;
  }

  // Parameter gradients: redo the analytic pass (the FD loop above clobbered
  // the forward caches).
  for (auto* p : layer.params()) p->zero_grad();
  layer.forward(x);
  layer.backward(y);
  for (auto* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double orig = p->value.at_flat(i);
      p->value.at_flat(i) = orig + eps;
      const double up = loss_of(layer.forward(x));
      p->value.at_flat(i) = orig - eps;
      const double down = loss_of(layer.forward(x));
      p->value.at_flat(i) = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad.at_flat(i), numeric, tolerance) << "param grad " << i;
    }
  }
}

TEST(Gradients, Linear) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  check_gradients(layer, tensor::random_uniform(2, 4, rng));
}

TEST(Gradients, ActivationsSmooth) {
  Rng rng(2);
  for (auto kind : {cpwl::FunctionKind::kGelu, cpwl::FunctionKind::kTanh,
                    cpwl::FunctionKind::kSigmoid, cpwl::FunctionKind::kSilu,
                    cpwl::FunctionKind::kSoftplus}) {
    Activation layer(kind);
    check_gradients(layer, tensor::random_uniform(2, 5, rng, -2.0, 2.0));
  }
}

TEST(Gradients, ReluAwayFromKink) {
  Rng rng(3);
  Activation layer(cpwl::FunctionKind::kRelu);
  // Keep samples away from 0 where ReLU is non-differentiable.
  Matrix x = tensor::random_uniform(2, 5, rng, 0.5, 2.0);
  x(0, 0) = -1.5;
  x(1, 3) = -0.7;
  check_gradients(layer, x);
}

TEST(Gradients, LayerNorm) {
  Rng rng(4);
  LayerNorm layer(6);
  check_gradients(layer, tensor::random_uniform(3, 6, rng, -1.0, 1.0), 5e-4);
}

TEST(Gradients, BatchNorm2d) {
  Rng rng(5);
  BatchNorm2d layer(2, 3, 3);
  check_gradients(layer, tensor::random_uniform(4, 18, rng, -1.0, 1.0), 1e-3);
}

TEST(Gradients, Conv2d) {
  Rng rng(6);
  tensor::ConvShape shape{2, 4, 4, 3, 1, 1};
  Conv2d layer(shape, 3, rng);
  check_gradients(layer, tensor::random_uniform(2, 32, rng, -1.0, 1.0), 5e-4);
}

TEST(Gradients, Conv2dStrided) {
  Rng rng(7);
  tensor::ConvShape shape{1, 6, 6, 3, 2, 1};
  Conv2d layer(shape, 2, rng);
  check_gradients(layer, tensor::random_uniform(1, 36, rng, -1.0, 1.0), 5e-4);
}

TEST(Gradients, MaxPoolAwayFromTies) {
  Rng rng(8);
  MaxPool2d layer(2, 4, 4);
  // Random continuous values: ties have probability zero.
  check_gradients(layer, tensor::random_uniform(2, 32, rng, -1.0, 1.0));
}

TEST(Gradients, GlobalAvgPool) {
  Rng rng(9);
  GlobalAvgPool layer(3, 2, 2);
  check_gradients(layer, tensor::random_uniform(2, 12, rng));
}

TEST(Gradients, MultiHeadSelfAttention) {
  Rng rng(10);
  MultiHeadSelfAttention layer(8, 2, rng);
  check_gradients(layer, tensor::random_uniform(4, 8, rng, -0.5, 0.5), 1e-3);
}

TEST(Gradients, GraphConv) {
  Rng rng(11);
  const auto adj = normalized_adjacency(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  GraphConv layer(adj, 4, 3, rng);
  check_gradients(layer, tensor::random_uniform(5, 4, rng), 5e-4);
}

TEST(Gradients, Residual) {
  Rng rng(12);
  Residual layer(std::make_unique<Linear>(4, 4, rng));
  check_gradients(layer, tensor::random_uniform(2, 4, rng));
}

TEST(Gradients, SequentialComposition) {
  Rng rng(13);
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Linear>(4, 6, rng));
  seq->add(make_tanh());
  seq->add(std::make_unique<Linear>(6, 3, rng));
  check_gradients(*seq, tensor::random_uniform(2, 4, rng, -0.5, 0.5), 5e-4);
}

TEST(Gradients, SequenceMeanPool) {
  Rng rng(14);
  SequenceMeanPool layer;
  check_gradients(layer, tensor::random_uniform(5, 4, rng));
}

TEST(Gradients, EmbeddingTable) {
  Rng rng(15);
  Embedding layer(6, 4, rng, /*positional=*/false);
  Matrix ids{{0.0, 3.0, 5.0, 3.0}};
  // Analytic.
  for (auto* p : layer.params()) p->zero_grad();
  const Matrix y = layer.forward(ids);
  layer.backward(y);
  Param* table = layer.params()[0];
  // Finite differences over the table.
  const double eps = 1e-5;
  for (std::size_t i = 0; i < table->value.size(); ++i) {
    const double orig = table->value.at_flat(i);
    table->value.at_flat(i) = orig + eps;
    const double up = loss_of(layer.forward(ids));
    table->value.at_flat(i) = orig - eps;
    const double down = loss_of(layer.forward(ids));
    table->value.at_flat(i) = orig;
    EXPECT_NEAR(table->grad.at_flat(i), (up - down) / (2.0 * eps), 2e-4) << i;
  }
}

}  // namespace
}  // namespace onesa::nn
