// Calibration tests: the FPGA resource model must reproduce the paper's
// Table I and Table II numbers exactly, the power model the 7.61 W design
// point, and the Fig. 9 scaling trends.
#include <gtest/gtest.h>

#include "fpga/power_model.hpp"
#include "fpga/resource_model.hpp"

namespace onesa::fpga {
namespace {

sim::ArrayConfig square(std::size_t dim, std::size_t macs = 16) {
  sim::ArrayConfig cfg;
  cfg.rows = dim;
  cfg.cols = dim;
  cfg.macs_per_pe = macs;
  return cfg;
}

// ------------------------------------------------------------------ Table I

TEST(TableI, ConventionalPeAnchor) {
  const ResourceVector pe = pe_resources(Design::kConventionalSa, 16);
  EXPECT_DOUBLE_EQ(pe.bram, 1.0);
  EXPECT_DOUBLE_EQ(pe.lut, 824.0);
  EXPECT_DOUBLE_EQ(pe.ff, 1862.0);
  EXPECT_DOUBLE_EQ(pe.dsp, 16.0);
}

TEST(TableI, OneSaPeAnchor) {
  const ResourceVector pe = pe_resources(Design::kOneSa, 16);
  EXPECT_DOUBLE_EQ(pe.bram, 1.0);
  EXPECT_DOUBLE_EQ(pe.lut, 826.0);
  EXPECT_DOUBLE_EQ(pe.ff, 2380.0);
  EXPECT_DOUBLE_EQ(pe.dsp, 16.0);
}

TEST(TableI, L3Anchors) {
  const ResourceVector sa = l3_resources(Design::kConventionalSa, true);
  EXPECT_DOUBLE_EQ(sa.bram, 0.0);
  EXPECT_DOUBLE_EQ(sa.lut, 174.0);
  EXPECT_DOUBLE_EQ(sa.ff, 566.0);
  const ResourceVector ours = l3_resources(Design::kOneSa, true);
  EXPECT_DOUBLE_EQ(ours.bram, 2.0);
  EXPECT_DOUBLE_EQ(ours.lut, 1021.0);
  EXPECT_DOUBLE_EQ(ours.ff, 1209.0);
  // Only the output L3 carries the addressing logic.
  const ResourceVector input_l3 = l3_resources(Design::kOneSa, false);
  EXPECT_DOUBLE_EQ(input_l3.lut, 174.0);
}

TEST(TableI, PePaperRatios) {
  // §IV-C: ONE-SA PE has identical BRAM/DSP, nearly equal LUT, ~27% more FF.
  const ResourceVector sa = pe_resources(Design::kConventionalSa, 16);
  const ResourceVector ours = pe_resources(Design::kOneSa, 16);
  EXPECT_DOUBLE_EQ(ours.bram, sa.bram);
  EXPECT_DOUBLE_EQ(ours.dsp, sa.dsp);
  EXPECT_NEAR(ours.lut / sa.lut, 1.0, 0.01);
  EXPECT_NEAR(ours.ff / sa.ff, 1.278, 0.01);
  // L3: 4.87x LUT, ~2.14x FF (paper says +1.14x more = 2.14x total).
  const ResourceVector l3sa = l3_resources(Design::kConventionalSa, true);
  const ResourceVector l3ours = l3_resources(Design::kOneSa, true);
  EXPECT_NEAR(l3ours.lut / l3sa.lut, 5.87, 0.02);
  EXPECT_NEAR(l3ours.ff / l3sa.ff, 2.14, 0.01);
}

// ----------------------------------------------------------------- Table II

struct TableIiRow {
  std::size_t dim;
  double sa_bram, sa_lut, sa_ff, sa_dsp;
  double onesa_bram, onesa_lut, onesa_ff, onesa_dsp;
};

class TableIi : public ::testing::TestWithParam<TableIiRow> {};

TEST_P(TableIi, TotalsMatchPaperExactly) {
  const auto& row = GetParam();
  const ResourceVector sa = total_resources(Design::kConventionalSa, square(row.dim));
  EXPECT_DOUBLE_EQ(sa.bram, row.sa_bram);
  EXPECT_DOUBLE_EQ(sa.lut, row.sa_lut);
  EXPECT_DOUBLE_EQ(sa.ff, row.sa_ff);
  EXPECT_DOUBLE_EQ(sa.dsp, row.sa_dsp);
  const ResourceVector ours = total_resources(Design::kOneSa, square(row.dim));
  EXPECT_DOUBLE_EQ(ours.bram, row.onesa_bram);
  EXPECT_DOUBLE_EQ(ours.lut, row.onesa_lut);
  EXPECT_DOUBLE_EQ(ours.ff, row.onesa_ff);
  EXPECT_DOUBLE_EQ(ours.dsp, row.onesa_dsp);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIi,
    ::testing::Values(
        TableIiRow{4, 470, 67976, 66924, 256, 472, 68855, 75855, 256},
        TableIiRow{8, 822, 179247, 179247, 1024, 824, 180222, 213042, 1024},
        TableIiRow{16, 1366, 730225, 552539, 4096, 1368, 731584, 685790, 4096}));

TEST(TableIi, FfOverheadInPaperRange) {
  // "a modest increase in FFs composition, ranging from 13.3% to 24.1%".
  for (std::size_t dim : {4u, 8u, 16u}) {
    const double sa = total_resources(Design::kConventionalSa, square(dim)).ff;
    const double ours = total_resources(Design::kOneSa, square(dim)).ff;
    const double overhead = ours / sa - 1.0;
    EXPECT_GE(overhead, 0.132) << dim;
    EXPECT_LE(overhead, 0.242) << dim;
  }
}

// -------------------------------------------------------------------- Fig 9

TEST(Fig9, LutFfDspGrowWithPes) {
  for (std::size_t macs : {2u, 8u, 32u}) {
    ResourceVector prev;
    for (std::size_t dim : {2u, 4u, 8u, 16u}) {
      const ResourceVector r = total_resources(Design::kOneSa, square(dim, macs));
      EXPECT_GT(r.lut, prev.lut);
      EXPECT_GT(r.ff, prev.ff);
      EXPECT_GT(r.dsp, prev.dsp);
      EXPECT_GT(r.bram, prev.bram);
      prev = r;
    }
  }
}

TEST(Fig9, DspLinearInMacs) {
  const double dsp16 = total_resources(Design::kOneSa, square(8, 16)).dsp;
  const double dsp32 = total_resources(Design::kOneSa, square(8, 32)).dsp;
  EXPECT_DOUBLE_EQ(dsp32, 2.0 * dsp16);
}

TEST(Fig9, BramIndependentOfMacs) {
  const double bram2 = total_resources(Design::kOneSa, square(8, 2)).bram;
  const double bram32 = total_resources(Design::kOneSa, square(8, 32)).bram;
  EXPECT_DOUBLE_EQ(bram2, bram32);
}

TEST(Fig9, FfGrowthPerMacDoublingInPaperRange) {
  // "The utilization of FFs increases by approximately 2.6% to 53.8% when
  // double the number of MACs is employed."
  for (std::size_t dim : {2u, 4u, 8u, 16u}) {
    for (std::size_t macs : {2u, 4u, 8u, 16u}) {
      const double before = total_resources(Design::kOneSa, square(dim, macs)).ff;
      const double after = total_resources(Design::kOneSa, square(dim, macs * 2)).ff;
      const double growth = after / before - 1.0;
      EXPECT_GE(growth, 0.02) << dim << "x" << macs;
      EXPECT_LE(growth, 0.55) << dim << "x" << macs;
    }
  }
}

TEST(Fig9, LutGrowthWithMacsIsMarginal) {
  const double lut16 = total_resources(Design::kOneSa, square(8, 16)).lut;
  const double lut32 = total_resources(Design::kOneSa, square(8, 32)).lut;
  EXPECT_LT(lut32 / lut16, 1.10);
}

TEST(Fig9, BramGrowsSlowerThanPes) {
  // 4x the PEs should far less than 4x the BRAM (gradual increment).
  const double bram_small = total_resources(Design::kOneSa, square(4)).bram;
  const double bram_large = total_resources(Design::kOneSa, square(8)).bram;
  EXPECT_LT(bram_large / bram_small, 2.0);
}

// -------------------------------------------------------------------- power

TEST(PowerModel, CalibratedToPaperDesignPoint) {
  // ONE-SA, 8x8 PEs, 16 MACs, 200 MHz -> 7.61 W (Table IV).
  const ResourceVector r = total_resources(Design::kOneSa, square(8, 16));
  PowerModel power;
  EXPECT_NEAR(power.watts(r, 200.0), 7.61, 0.01);
}

TEST(PowerModel, DynamicScalesWithClock) {
  const ResourceVector r = total_resources(Design::kOneSa, square(8, 16));
  PowerModel power;
  const auto p200 = power.estimate(r, 200.0);
  const auto p100 = power.estimate(r, 100.0);
  EXPECT_DOUBLE_EQ(p200.static_watts, p100.static_watts);
  EXPECT_NEAR((p200.total() - p200.static_watts) / (p100.total() - p100.static_watts),
              2.0, 1e-9);
}

TEST(PowerModel, BiggerArraysBurnMore) {
  PowerModel power;
  double prev = 0.0;
  for (std::size_t dim : {2u, 4u, 8u, 16u}) {
    const double w =
        power.watts(total_resources(Design::kOneSa, square(dim)), 200.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(PowerModel, EnergyIsPowerTimesTime) {
  PowerModel power;
  const ResourceVector r = total_resources(Design::kOneSa, square(4));
  EXPECT_NEAR(power.energy_joules(r, 200.0, 2.0), 2.0 * power.watts(r, 200.0), 1e-12);
}

TEST(ResourceModel, InvalidInputsThrow) {
  EXPECT_THROW(pe_resources(Design::kOneSa, 0), Error);
  EXPECT_THROW(infrastructure(0), Error);
}

}  // namespace
}  // namespace onesa::fpga
