// Property-based tests for CPWL tables and the MHP datapath: structural
// invariants that must hold for every function / granularity / input, not
// just the sampled examples of test_cpwl.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "cpwl/segment_table.hpp"
#include "onesa/accelerator.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using cpwl::FunctionKind;
using cpwl::SegmentTable;
using cpwl::SegmentTableConfig;

SegmentTable build(FunctionKind kind, double g) {
  SegmentTableConfig cfg;
  cfg.granularity = g;
  return SegmentTable::build(kind, cfg);
}

// ------------------------------------------------------- continuity property

class CpwlContinuity
    : public ::testing::TestWithParam<std::tuple<FunctionKind, double>> {};

TEST_P(CpwlContinuity, ContinuousAtEverySegmentBoundary) {
  const auto [kind, g] = GetParam();
  const auto t = build(kind, g);
  // At each interior boundary, the left segment's line and the right
  // segment's line meet at the curve point (both interpolate f there).
  for (int s = t.min_segment() + 1; s <= t.max_segment(); ++s) {
    const double x = s * g;
    const double left = t.k(s - 1) * x + t.b(s - 1);
    const double right = t.k(s) * x + t.b(s);
    EXPECT_NEAR(left, right, 1e-9) << "boundary " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FunctionsAndGranularities, CpwlContinuity,
    ::testing::Combine(::testing::Values(FunctionKind::kGelu, FunctionKind::kTanh,
                                         FunctionKind::kSigmoid, FunctionKind::kExp,
                                         FunctionKind::kSoftplus),
                       ::testing::Values(0.125, 0.25, 0.5, 1.0)));

// ----------------------------------------------------- monotonicity property

class CpwlMonotonicity : public ::testing::TestWithParam<FunctionKind> {};

TEST_P(CpwlMonotonicity, MonotoneFunctionsStayMonotoneUnderCpwl) {
  // Piecewise-linear interpolation of a monotone function is monotone
  // (segment slopes are secant slopes >= 0, boundaries continuous), and
  // capping preserves that. Softmax correctness depends on this: a
  // non-monotone exp approximation could permute attention rankings.
  const auto t = build(GetParam(), 0.25);
  double prev = t.eval(-20.0);
  for (double x = -20.0; x <= 20.0; x += 0.0173) {
    const double y = t.eval(x);
    EXPECT_GE(y, prev - 1e-12) << "x = " << x;
    prev = y;
  }
}

INSTANTIATE_TEST_SUITE_P(MonotoneFunctions, CpwlMonotonicity,
                         ::testing::Values(FunctionKind::kTanh, FunctionKind::kSigmoid,
                                           FunctionKind::kExp, FunctionKind::kErf,
                                           FunctionKind::kSoftplus,
                                           FunctionKind::kRelu),
                         [](const auto& info) {
                           return std::string(cpwl::function_name(info.param));
                         });

TEST(CpwlMonotonicityFixed, ExpNearMonotoneOverEveryRawInput) {
  // The INT16 datapath version, over every representable input. Exact
  // monotonicity cannot hold: quantizing k to the nearest ulp perturbs the
  // line by up to |x| * ulp/2 (|x| <= 16 in the exp domain -> 8 ulps), so
  // adjacent segments with near-zero true slope can jitter by a few raw
  // steps — and the far tail of exp can even dip a few ulps below zero.
  // The property we rely on (softmax ranking stability) only needs the
  // jitter bounded by that quantization envelope.
  const auto t = build(FunctionKind::kExp, 0.25);
  constexpr std::int32_t kQuantJitter = 9;  // |x|max * ulp/2 + final rounding
  std::int32_t running_max = t.eval_fixed(fixed::Fix16::from_raw(-32768)).raw();
  for (int raw = -32767; raw <= 32767; ++raw) {
    const std::int32_t y = t.eval_fixed(fixed::Fix16::from_raw(
                                            static_cast<std::int16_t>(raw)))
                               .raw();
    ASSERT_GE(y, running_max - kQuantJitter) << "raw " << raw;
    running_max = std::max(running_max, y);
  }
}

// -------------------------------------------------------- identity properties

TEST(MhpProperties, IdentityParamsReturnInputExactly) {
  // Y = X (.) 1 + 0 must be bit-exact X on every geometry: the MHP is used
  // for residual adds, where silently perturbing X would corrupt the skip
  // path.
  Rng rng(1);
  for (std::size_t dim : {2u, 3u, 4u, 8u}) {
    OneSaConfig cfg;
    cfg.array.rows = dim;
    cfg.array.cols = dim;
    cfg.array.macs_per_pe = 4;
    cfg.mode = ExecutionMode::kCycleAccurate;
    OneSaAccelerator accel(cfg);
    const auto x = tensor::to_fixed(tensor::random_uniform(7, 5, rng, -60.0, 60.0));
    const auto y = accel.mhp(x, tensor::constant_fix(7, 5, 1.0),
                             tensor::constant_fix(7, 5, 0.0));
    EXPECT_EQ(y.y, x) << "geometry " << dim;
  }
}

TEST(MhpProperties, ReluExactOnEveryRawInput) {
  // ReLU is piecewise linear with its breakpoint on a segment boundary, so
  // the full IPF+MHP pipeline must compute max(0, x) *exactly* for every
  // INT16 value (this is why CNN accuracy is granularity-independent).
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = ExecutionMode::kAnalytic;
  for (double g : {0.25, 1.0}) {
    cfg.granularity = g;
    OneSaAccelerator accel(cfg);
    tensor::FixMatrix x(1, 4096);
    for (int chunk = -32768; chunk < 32768; chunk += 4096) {
      for (int i = 0; i < 4096; ++i) {
        x.at_flat(static_cast<std::size_t>(i)) =
            fixed::Fix16::from_raw(static_cast<std::int16_t>(chunk + i));
      }
      const auto y = accel.elementwise(FunctionKind::kRelu, x);
      for (int i = 0; i < 4096; ++i) {
        const std::int16_t raw = static_cast<std::int16_t>(chunk + i);
        const std::int16_t want = raw > 0 ? raw : std::int16_t{0};
        ASSERT_EQ(y.y.at_flat(static_cast<std::size_t>(i)).raw(), want)
            << "raw " << raw << " g " << g;
      }
    }
  }
}

TEST(MhpProperties, CompositeModeAgreement) {
  // The composite ops (softmax, layernorm) are compositions of charged
  // sub-ops; both execution modes must agree on results AND cycles.
  OneSaConfig detailed_cfg;
  detailed_cfg.array.rows = 4;
  detailed_cfg.array.cols = 4;
  detailed_cfg.array.macs_per_pe = 4;
  detailed_cfg.mode = ExecutionMode::kCycleAccurate;
  OneSaConfig analytic_cfg = detailed_cfg;
  analytic_cfg.mode = ExecutionMode::kAnalytic;
  OneSaAccelerator detailed(detailed_cfg);
  OneSaAccelerator analytic(analytic_cfg);

  Rng rng(2);
  const auto x = tensor::to_fixed(tensor::random_uniform(6, 8, rng, -2.0, 2.0));
  const auto sm_d = detailed.softmax_rows(x);
  const auto sm_a = analytic.softmax_rows(x);
  EXPECT_EQ(sm_d.y, sm_a.y);
  EXPECT_EQ(sm_d.cycles.total(), sm_a.cycles.total());

  const auto gamma = tensor::constant_fix(1, 8, 1.0);
  const auto beta = tensor::constant_fix(1, 8, 0.0);
  const auto ln_d = detailed.layernorm_rows(x, gamma, beta);
  const auto ln_a = analytic.layernorm_rows(x, gamma, beta);
  EXPECT_EQ(ln_d.y, ln_a.y);
  EXPECT_EQ(ln_d.cycles.total(), ln_a.cycles.total());
}

TEST(MhpProperties, SaturationIsClampNotWrap) {
  // Extreme K values must saturate the INT16 result, never wrap sign.
  OneSaConfig cfg;
  cfg.array.rows = 2;
  cfg.array.cols = 2;
  cfg.array.macs_per_pe = 2;
  cfg.mode = ExecutionMode::kCycleAccurate;
  OneSaAccelerator accel(cfg);
  const auto x = tensor::constant_fix(2, 2, 60.0);
  const auto k = tensor::constant_fix(2, 2, 60.0);
  const auto b = tensor::constant_fix(2, 2, 0.0);
  const auto y = accel.mhp(x, k, b);
  for (std::size_t i = 0; i < y.y.size(); ++i) {
    EXPECT_EQ(y.y.at_flat(i).raw(), std::numeric_limits<std::int16_t>::max());
  }
}

// ---------------------------------------------- segment-count sanity property

class TableBytesScaling : public ::testing::TestWithParam<FunctionKind> {};

TEST_P(TableBytesScaling, HalvingGranularityDoublesBytes) {
  for (double g : {1.0, 0.5, 0.25, 0.125}) {
    const auto coarse = build(GetParam(), g);
    const auto fine = build(GetParam(), g / 2.0);
    EXPECT_EQ(fine.table_bytes(), 2 * coarse.table_bytes()) << "g " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Functions, TableBytesScaling,
                         ::testing::Values(FunctionKind::kGelu, FunctionKind::kExp,
                                           FunctionKind::kSigmoid),
                         [](const auto& info) {
                           return std::string(cpwl::function_name(info.param));
                         });

}  // namespace
}  // namespace onesa
