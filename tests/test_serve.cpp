// Tests of the serving runtime (src/serve/): batched execution is
// bit-identical to sequential per-request accelerator calls, padding rows
// never leak into outputs, the pool drains cleanly on shutdown, the stats
// percentiles are monotone, and lifetime counters merge across workers.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "onesa/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_pool.hpp"
#include "serve/stats.hpp"
#include "tensor/ops.hpp"

namespace onesa::serve {
namespace {

using tensor::FixMatrix;
using tensor::Matrix;
using tensor::to_fixed;

OneSaConfig small_config(ExecutionMode mode) {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = mode;
  return cfg;
}

FixMatrix random_fix(std::size_t rows, std::size_t cols, Rng& rng, double lo = -2.0,
                     double hi = 2.0) {
  return to_fixed(tensor::random_uniform(rows, cols, rng, lo, hi));
}

// ------------------------------------------------------------------ batching

class BatchBitIdentity : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(BatchBitIdentity, ElementwiseMatchesSequential) {
  // Ragged row counts so requests straddle tile boundaries.
  const std::size_t row_counts[] = {1, 3, 2, 5};
  Rng rng(11);
  std::vector<FixMatrix> inputs;
  for (std::size_t r : row_counts) inputs.push_back(random_fix(r, 6, rng, -4.0, 4.0));

  std::vector<TaggedRequest> tagged;
  for (const auto& x : inputs)
    tagged.push_back(make_elementwise_request(cpwl::FunctionKind::kGelu, x));
  std::vector<ServeRequest> batch;
  std::vector<std::future<ServeResult>> futures;
  for (auto& t : tagged) {
    batch.push_back(std::move(t.request));
    futures.push_back(std::move(t.result));
  }

  OneSaAccelerator batched_accel(small_config(GetParam()));
  DynamicBatcher batcher;
  const BatchRecord record = batcher.execute(std::move(batch), batched_accel, 0);
  EXPECT_EQ(record.requests, 4u);
  EXPECT_EQ(record.rows, 11u);
  EXPECT_EQ(record.padded_rows % 4, 0u);  // whole tiles of the 4-row array

  // Sequential reference: a fresh accelerator per request.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    OneSaAccelerator solo(small_config(GetParam()));
    const auto want = solo.elementwise(cpwl::FunctionKind::kGelu, inputs[i]);
    const ServeResult got = futures[i].get();
    EXPECT_EQ(got.y, want.y) << "request " << i;
    EXPECT_EQ(got.batch_requests, 4u);
  }
}

TEST_P(BatchBitIdentity, GemmWithSharedWeightMatchesSequential) {
  Rng rng(12);
  const auto weight = std::make_shared<const FixMatrix>(random_fix(5, 7, rng));
  const std::size_t row_counts[] = {2, 1, 4};
  std::vector<FixMatrix> inputs;
  for (std::size_t r : row_counts) inputs.push_back(random_fix(r, 5, rng));

  std::vector<ServeRequest> batch;
  std::vector<std::future<ServeResult>> futures;
  for (const auto& a : inputs) {
    auto t = make_gemm_request(a, weight);
    batch.push_back(std::move(t.request));
    futures.push_back(std::move(t.result));
  }

  OneSaAccelerator batched_accel(small_config(GetParam()));
  DynamicBatcher batcher;
  batcher.execute(std::move(batch), batched_accel, 0);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    OneSaAccelerator solo(small_config(GetParam()));
    const auto want = solo.gemm(inputs[i], *weight);
    EXPECT_EQ(futures[i].get().y, want.y) << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchBitIdentity,
                         ::testing::Values(ExecutionMode::kCycleAccurate,
                                           ExecutionMode::kAnalytic),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kCycleAccurate
                                      ? "CycleAccurate"
                                      : "Analytic";
                         });

TEST(Batcher, PaddingRowsNeverLeakIntoOutputs) {
  // Sigmoid(0) = 0.5 != 0, so a leaked zero padding row would be visible.
  Rng rng(13);
  const FixMatrix x = random_fix(3, 5, rng, -3.0, 3.0);  // pads 3 -> 4 rows
  auto t = make_elementwise_request(cpwl::FunctionKind::kSigmoid, x);
  std::vector<ServeRequest> batch;
  batch.push_back(std::move(t.request));

  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  const BatchRecord record = DynamicBatcher().execute(std::move(batch), accel, 0);
  EXPECT_EQ(record.padded_rows, 4u);
  EXPECT_EQ(record.rows, 3u);

  const ServeResult got = t.result.get();
  ASSERT_EQ(got.y.rows(), 3u);  // exactly the request's rows, no pad row
  ASSERT_EQ(got.y.cols(), 5u);
  OneSaAccelerator solo(small_config(ExecutionMode::kAnalytic));
  EXPECT_EQ(got.y, solo.elementwise(cpwl::FunctionKind::kSigmoid, x).y);
}

TEST(Batcher, CompatibilityRules) {
  Rng rng(14);
  auto gelu_a = make_elementwise_request(cpwl::FunctionKind::kGelu, random_fix(2, 4, rng));
  auto gelu_b = make_elementwise_request(cpwl::FunctionKind::kGelu, random_fix(3, 4, rng));
  auto gelu_wide = make_elementwise_request(cpwl::FunctionKind::kGelu, random_fix(2, 6, rng));
  auto relu = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  EXPECT_TRUE(DynamicBatcher::compatible(gelu_a.request, gelu_b.request));
  EXPECT_FALSE(DynamicBatcher::compatible(gelu_a.request, gelu_wide.request));  // width
  EXPECT_FALSE(DynamicBatcher::compatible(gelu_a.request, relu.request));       // function

  const auto w1 = std::make_shared<const FixMatrix>(random_fix(4, 3, rng));
  const auto w2 = std::make_shared<const FixMatrix>(random_fix(4, 3, rng));
  auto g1 = make_gemm_request(random_fix(2, 4, rng), w1);
  auto g2 = make_gemm_request(random_fix(3, 4, rng), w1);
  auto g3 = make_gemm_request(random_fix(2, 4, rng), w2);
  EXPECT_TRUE(DynamicBatcher::compatible(g1.request, g2.request));   // same weight
  EXPECT_FALSE(DynamicBatcher::compatible(g1.request, g3.request));  // different weight
  EXPECT_FALSE(DynamicBatcher::compatible(gelu_a.request, g1.request));

  auto tr = make_trace_request(std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(64, 8, 4, 2, 3)));
  EXPECT_FALSE(DynamicBatcher::compatible(tr.request, tr.request));  // traces never batch
}

TEST(Batcher, TakeBatchRespectsBudgetsAndOrder) {
  Rng rng(15);
  BatcherConfig cfg;
  cfg.max_batch_rows = 6;
  DynamicBatcher batcher(cfg);

  std::deque<ServeRequest> pending;
  std::vector<RequestId> ids;
  for (std::size_t rows : {3u, 2u, 4u, 1u}) {  // 3+2 fit; 4 overflows; 1 fits
    auto t = make_elementwise_request(cpwl::FunctionKind::kTanh, random_fix(rows, 4, rng));
    ids.push_back(t.request.id);
    pending.push_back(std::move(t.request));
  }
  const auto batch = batcher.take_batch(pending);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, ids[0]);
  EXPECT_EQ(batch[1].id, ids[1]);
  EXPECT_EQ(batch[2].id, ids[3]);  // the 1-row request leapfrogs the 4-row one
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending.front().id, ids[2]);
}

// ---------------------------------------------------------------------- pool

TEST(ServerPool, ServesManyRequestsBitIdentically) {
  ServerPoolConfig cfg;
  cfg.workers = 3;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(16);
  std::vector<FixMatrix> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 30; ++i) {
    inputs.push_back(random_fix(1 + i % 5, 8, rng, -3.0, 3.0));
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kGelu, inputs.back()));
  }
  OneSaAccelerator solo(small_config(ExecutionMode::kAnalytic));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().y, solo.elementwise(cpwl::FunctionKind::kGelu, inputs[i]).y)
        << "request " << i;
  }
}

TEST(ServerPool, DrainsCleanlyOnShutdown) {
  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(17);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 25; ++i)
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));

  pool.shutdown();  // must serve all 25 before returning
  EXPECT_EQ(pool.pending(), 0u);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    f.get();
  }
  EXPECT_EQ(pool.stats().completed(), 25u);
  // Closed pool rejects new work.
  EXPECT_THROW(pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)),
               Error);
  pool.shutdown();  // idempotent
}

TEST(ServerPool, TraceRequestMatchesDirectEstimate) {
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::bert_base_trace(16));
  auto future = pool.submit_trace(trace);
  const ServeResult got = future.get();
  pool.shutdown();

  const sim::TimingModel timing(cfg.accelerator.array);
  const auto want = nn::estimate_trace(*trace, timing);
  EXPECT_EQ(got.cycles.total(), want.cycles.total());
  EXPECT_DOUBLE_EQ(got.trace.latency_ms, want.latency_ms);
  EXPECT_DOUBLE_EQ(got.trace.gops, want.gops);
  EXPECT_EQ(got.mac_ops, nn::trace_mac_ops(*trace));

  // The worker charged its accelerator, so the fleet totals see the trace.
  const LifetimeTotals fleet = pool.fleet_lifetime();
  EXPECT_EQ(fleet.cycles.total(), want.cycles.total());
  EXPECT_EQ(fleet.mac_ops, nn::trace_mac_ops(*trace));
}

TEST(ServerPool, RotationBalancesSimulatedLoadExactly) {
  // 16 identical trace requests over 4 workers: rotation dispatch gives each
  // worker exactly 4, so per-worker busy cycles are equal and the fleet
  // makespan is total/4 — the mechanism behind the N-worker speedup of
  // bench/serving_throughput.cpp.
  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.dispatch = DispatchPolicy::kRotation;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(256, 32, 16, 4, 8));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(pool.submit_trace(trace));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const auto busy = pool.worker_busy_cycles();
  ASSERT_EQ(busy.size(), 4u);
  for (std::size_t w = 1; w < busy.size(); ++w) EXPECT_EQ(busy[w], busy[0]);
  EXPECT_EQ(pool.makespan_cycles(), busy[0]);
  EXPECT_EQ(pool.stats().total_cycles().total(), 4 * busy[0]);
}

TEST(ServerPool, LeastLoadedMatchesRotationOnUniformCosts) {
  // Identical costs: least-loaded with lowest-index tie-break degenerates to
  // the rotation schedule, so the uniform-traffic guarantees carry over.
  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.dispatch = DispatchPolicy::kLeastLoaded;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(256, 32, 16, 4, 8));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(pool.submit_trace(trace));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const auto busy = pool.worker_busy_cycles();
  ASSERT_EQ(busy.size(), 4u);
  for (std::size_t w = 1; w < busy.size(); ++w) EXPECT_EQ(busy[w], busy[0]);
}

TEST(ServerPool, LeastLoadedBalancesSkewedCostsBetterThanRotation) {
  // Heterogeneous traffic: one heavy trace followed by many light ones. The
  // rotation hands every second request to the worker already holding the
  // heavy trace; least-loaded routes the light stream to the other worker
  // until the assigned simulated cost evens out.
  const auto heavy =
      std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(2048, 64, 32, 8, 16));
  const auto light = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(64, 16, 8, 4, 4));
  const std::uint64_t heavy_macs = nn::trace_mac_ops(*heavy);
  const std::uint64_t light_macs = nn::trace_mac_ops(*light);
  ASSERT_GT(heavy_macs, 8 * light_macs);  // the skew the test depends on

  auto run = [&](DispatchPolicy policy) {
    ServerPoolConfig cfg;
    cfg.workers = 2;
    cfg.dispatch = policy;
    cfg.accelerator = small_config(ExecutionMode::kAnalytic);
    ServerPool pool(cfg);
    std::vector<std::future<ServeResult>> futures;
    futures.push_back(pool.submit_trace(heavy));
    for (int i = 0; i < 12; ++i) futures.push_back(pool.submit_trace(light));
    for (auto& f : futures) f.get();
    pool.shutdown();
    return pool.makespan_cycles();
  };

  const std::uint64_t rotation_makespan = run(DispatchPolicy::kRotation);
  const std::uint64_t least_loaded_makespan = run(DispatchPolicy::kLeastLoaded);
  // Rotation pins ~6 light traces behind the heavy one on worker 0;
  // least-loaded sends every light trace to worker 1 until the costs level,
  // so its makespan must be strictly better.
  EXPECT_LT(least_loaded_makespan, rotation_makespan);
}

TEST(ServerPool, LeastLoadedAssignedCostTracksEstimates) {
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.dispatch = DispatchPolicy::kLeastLoaded;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  // One request per batch so assigned costs map 1:1 to request estimates.
  cfg.batcher.max_batch_requests = 1;
  ServerPool pool(cfg);

  Rng rng(77);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(
        pool.submit_elementwise(cpwl::FunctionKind::kGelu, random_fix(2, 8, rng)));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const auto assigned = pool.assigned_cost();
  ASSERT_EQ(assigned.size(), 2u);
  // 6 equal-cost requests (2x8 elementwise = 32 MACs each) level to 3 each.
  EXPECT_EQ(assigned[0], assigned[1]);
  EXPECT_EQ(assigned[0] + assigned[1], 6u * 2u * 16u);
}

TEST(ServerPool, BatchesCompatibleRequestsTogether) {
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  cfg.batcher.max_batch_rows = 64;
  ServerPool pool(cfg);

  Rng rng(18);
  // Same function and width — all 6 should ride in few passes. The single
  // worker only starts consuming after the first pop, so later requests
  // accumulate and batch.
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kGelu, random_fix(4, 4, rng)));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const ServeStats stats = pool.stats();
  EXPECT_EQ(stats.completed(), 6u);
  EXPECT_LE(stats.batches(), 6u);
  EXPECT_GT(stats.batch_fill(), 0.0);
  EXPECT_LE(stats.batch_fill(), 1.0);
}

// --------------------------------------------------------------------- stats

TEST(ServeStats, PercentilesAreMonotone) {
  ServeStats stats;
  BatchRecord record;
  record.requests = 9;
  record.rows = 9;
  record.padded_rows = 12;
  // Deliberately unsorted latencies.
  record.latency_ms = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0};
  stats.record_batch(record);

  double prev = 0.0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = stats.percentile_latency_ms(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(50.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(100.0), 9.0);
  EXPECT_THROW(stats.percentile_latency_ms(101.0), Error);
}

TEST(ServeStats, MergeAccumulatesEverything) {
  ServeStats a;
  ServeStats b;
  BatchRecord ra;
  ra.requests = 2;
  ra.rows = 4;
  ra.padded_rows = 8;
  ra.cycles.compute_cycles = 100;
  ra.mac_ops = 50;
  ra.latency_ms = {1.0, 2.0};
  BatchRecord rb;
  rb.requests = 1;
  rb.rows = 4;
  rb.padded_rows = 4;
  rb.cycles.compute_cycles = 40;
  rb.mac_ops = 20;
  rb.latency_ms = {10.0};
  a.record_batch(ra);
  b.record_batch(rb);

  a.merge(b);
  EXPECT_EQ(a.completed(), 3u);
  EXPECT_EQ(a.batches(), 2u);
  EXPECT_EQ(a.total_cycles().compute_cycles, 140u);
  EXPECT_EQ(a.total_mac_ops(), 70u);
  EXPECT_DOUBLE_EQ(a.batch_fill(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(a.percentile_latency_ms(100.0), 10.0);
}

// ------------------------------------------------- lifetime counter merging

TEST(LifetimeTotals, CycleStatsMergeHelper) {
  sim::CycleStats a;
  a.fill_cycles = 1;
  a.compute_cycles = 2;
  a.drain_cycles = 3;
  a.memory_cycles = 4;
  a.ipf_cycles = 5;
  sim::CycleStats b;
  b.fill_cycles = 10;
  b.compute_cycles = 20;
  b.drain_cycles = 30;
  b.memory_cycles = 40;
  b.ipf_cycles = 50;

  const sim::CycleStats sum = a + b;
  EXPECT_EQ(sum.fill_cycles, 11u);
  EXPECT_EQ(sum.compute_cycles, 22u);
  EXPECT_EQ(sum.drain_cycles, 33u);
  EXPECT_EQ(sum.memory_cycles, 44u);
  EXPECT_EQ(sum.ipf_cycles, 55u);
  EXPECT_EQ(sum.total(), a.total() + b.total());
}

TEST(LifetimeTotals, MergeAcrossAcceleratorInstances) {
  Rng rng(19);
  OneSaAccelerator a(small_config(ExecutionMode::kAnalytic));
  OneSaAccelerator b(small_config(ExecutionMode::kAnalytic));
  const FixMatrix x = random_fix(4, 4, rng);
  a.gemm(x, x);
  b.elementwise(cpwl::FunctionKind::kRelu, x);

  LifetimeTotals fleet = a.lifetime();
  fleet.merge(b.lifetime());
  EXPECT_EQ(fleet.cycles, a.lifetime_cycles() + b.lifetime_cycles());
  EXPECT_EQ(fleet.mac_ops, a.lifetime_mac_ops() + b.lifetime_mac_ops());
}

// ------------------------------------------------------- shared CPWL tables

TEST(SharedTables, WorkersAliasOneTableSetBitIdentically) {
  Rng rng(20);
  OneSaAccelerator owner(small_config(ExecutionMode::kAnalytic));
  OneSaAccelerator alias(small_config(ExecutionMode::kAnalytic), owner.shared_tables());
  EXPECT_EQ(&owner.tables(), &alias.tables());

  const FixMatrix x = random_fix(5, 5, rng, -4.0, 4.0);
  EXPECT_EQ(owner.elementwise(cpwl::FunctionKind::kTanh, x).y,
            alias.elementwise(cpwl::FunctionKind::kTanh, x).y);
}

TEST(SharedTables, GranularityMismatchRejected) {
  OneSaAccelerator owner(small_config(ExecutionMode::kAnalytic));
  OneSaConfig other = small_config(ExecutionMode::kAnalytic);
  other.granularity = 1.0;
  EXPECT_THROW(OneSaAccelerator(other, owner.shared_tables()), ConfigError);
}

TEST(SharedTables, FracBitsMismatchRejected) {
  // A table set built directly with a different fixed-point format must not
  // be silently accepted (OneSaConfig itself can only express Q6.9, so this
  // guards hand-built sets).
  const auto q8_tables = std::make_shared<const cpwl::TableSet>(0.25, /*frac_bits=*/8);
  EXPECT_THROW(OneSaAccelerator(small_config(ExecutionMode::kAnalytic), q8_tables),
               ConfigError);
}

}  // namespace
}  // namespace onesa::serve
