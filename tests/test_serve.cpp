// Tests of the serving runtime (src/serve/): batched execution is
// bit-identical to sequential per-request accelerator calls, padding rows
// never leak into outputs, the pool drains cleanly on shutdown, the stats
// percentiles are monotone, and lifetime counters merge across workers.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/norm.hpp"
#include "onesa/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_pool.hpp"
#include "serve/stats.hpp"
#include "tensor/kernels/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace onesa::serve {
namespace {

using tensor::FixMatrix;
using tensor::Matrix;
using tensor::to_fixed;

OneSaConfig small_config(ExecutionMode mode) {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = mode;
  return cfg;
}

FixMatrix random_fix(std::size_t rows, std::size_t cols, Rng& rng, double lo = -2.0,
                     double hi = 2.0) {
  return to_fixed(tensor::random_uniform(rows, cols, rng, lo, hi));
}

/// Small row-independent MLP (Linear -> ReLU -> LayerNorm -> Linear): every
/// layer treats rows as samples, so requests may batch.
std::unique_ptr<nn::Sequential> make_mlp(std::size_t in, std::size_t hidden,
                                         std::size_t out, Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Linear>(in, hidden, rng));
  model->add(nn::make_relu());
  model->add(std::make_unique<nn::LayerNorm>(hidden));
  model->add(std::make_unique<nn::Linear>(hidden, out, rng));
  return model;
}

/// Registration options opting a rows-are-samples model into batching.
ModelOptions batchable_options() {
  ModelOptions options;
  options.batchable = true;
  return options;
}

// ------------------------------------------------------------------ batching

class BatchBitIdentity : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(BatchBitIdentity, ElementwiseMatchesSequential) {
  // Ragged row counts so requests straddle tile boundaries.
  const std::size_t row_counts[] = {1, 3, 2, 5};
  Rng rng(11);
  std::vector<FixMatrix> inputs;
  for (std::size_t r : row_counts) inputs.push_back(random_fix(r, 6, rng, -4.0, 4.0));

  std::vector<TaggedRequest> tagged;
  for (const auto& x : inputs)
    tagged.push_back(make_elementwise_request(cpwl::FunctionKind::kGelu, x));
  std::vector<ServeRequest> batch;
  std::vector<std::future<ServeResult>> futures;
  for (auto& t : tagged) {
    batch.push_back(std::move(t.request));
    futures.push_back(std::move(t.result));
  }

  OneSaAccelerator batched_accel(small_config(GetParam()));
  DynamicBatcher batcher;
  const BatchRecord record = batcher.execute(batch, batched_accel, 0);
  EXPECT_EQ(record.requests, 4u);
  EXPECT_EQ(record.rows, 11u);
  EXPECT_EQ(record.padded_rows % 4, 0u);  // whole tiles of the 4-row array

  // Sequential reference: a fresh accelerator per request.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    OneSaAccelerator solo(small_config(GetParam()));
    const auto want = solo.elementwise(cpwl::FunctionKind::kGelu, inputs[i]);
    const ServeResult got = futures[i].get();
    EXPECT_EQ(got.y, want.y) << "request " << i;
    EXPECT_EQ(got.batch_requests, 4u);
  }
}

TEST_P(BatchBitIdentity, GemmWithSharedWeightMatchesSequential) {
  Rng rng(12);
  const auto weight = std::make_shared<const FixMatrix>(random_fix(5, 7, rng));
  const std::size_t row_counts[] = {2, 1, 4};
  std::vector<FixMatrix> inputs;
  for (std::size_t r : row_counts) inputs.push_back(random_fix(r, 5, rng));

  std::vector<ServeRequest> batch;
  std::vector<std::future<ServeResult>> futures;
  for (const auto& a : inputs) {
    auto t = make_gemm_request(a, weight);
    batch.push_back(std::move(t.request));
    futures.push_back(std::move(t.result));
  }

  OneSaAccelerator batched_accel(small_config(GetParam()));
  DynamicBatcher batcher;
  batcher.execute(batch, batched_accel, 0);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    OneSaAccelerator solo(small_config(GetParam()));
    const auto want = solo.gemm(inputs[i], *weight);
    EXPECT_EQ(futures[i].get().y, want.y) << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchBitIdentity,
                         ::testing::Values(ExecutionMode::kCycleAccurate,
                                           ExecutionMode::kAnalytic),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kCycleAccurate
                                      ? "CycleAccurate"
                                      : "Analytic";
                         });

TEST(Batcher, PaddingRowsNeverLeakIntoOutputs) {
  // Sigmoid(0) = 0.5 != 0, so a leaked zero padding row would be visible.
  Rng rng(13);
  const FixMatrix x = random_fix(3, 5, rng, -3.0, 3.0);  // pads 3 -> 4 rows
  auto t = make_elementwise_request(cpwl::FunctionKind::kSigmoid, x);
  std::vector<ServeRequest> batch;
  batch.push_back(std::move(t.request));

  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  const BatchRecord record = DynamicBatcher().execute(batch, accel, 0);
  EXPECT_EQ(record.padded_rows, 4u);
  EXPECT_EQ(record.rows, 3u);

  const ServeResult got = t.result.get();
  ASSERT_EQ(got.y.rows(), 3u);  // exactly the request's rows, no pad row
  ASSERT_EQ(got.y.cols(), 5u);
  OneSaAccelerator solo(small_config(ExecutionMode::kAnalytic));
  EXPECT_EQ(got.y, solo.elementwise(cpwl::FunctionKind::kSigmoid, x).y);
}

TEST(Batcher, CompatibilityRules) {
  Rng rng(14);
  auto gelu_a = make_elementwise_request(cpwl::FunctionKind::kGelu, random_fix(2, 4, rng));
  auto gelu_b = make_elementwise_request(cpwl::FunctionKind::kGelu, random_fix(3, 4, rng));
  auto gelu_wide = make_elementwise_request(cpwl::FunctionKind::kGelu, random_fix(2, 6, rng));
  auto relu = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  EXPECT_TRUE(DynamicBatcher::compatible(gelu_a.request, gelu_b.request));
  EXPECT_FALSE(DynamicBatcher::compatible(gelu_a.request, gelu_wide.request));  // width
  EXPECT_FALSE(DynamicBatcher::compatible(gelu_a.request, relu.request));       // function

  const auto w1 = std::make_shared<const FixMatrix>(random_fix(4, 3, rng));
  const auto w2 = std::make_shared<const FixMatrix>(random_fix(4, 3, rng));
  auto g1 = make_gemm_request(random_fix(2, 4, rng), w1);
  auto g2 = make_gemm_request(random_fix(3, 4, rng), w1);
  auto g3 = make_gemm_request(random_fix(2, 4, rng), w2);
  EXPECT_TRUE(DynamicBatcher::compatible(g1.request, g2.request));   // same weight
  EXPECT_FALSE(DynamicBatcher::compatible(g1.request, g3.request));  // different weight
  EXPECT_FALSE(DynamicBatcher::compatible(gelu_a.request, g1.request));

  auto tr = make_trace_request(std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(64, 8, 4, 2, 3)));
  EXPECT_FALSE(DynamicBatcher::compatible(tr.request, tr.request));  // traces never batch
}

TEST(Batcher, TakeBatchRespectsBudgetsAndOrder) {
  Rng rng(15);
  BatcherConfig cfg;
  cfg.max_batch_rows = 6;
  DynamicBatcher batcher(cfg);

  std::vector<ServeRequest> pending;
  std::vector<RequestId> ids;
  for (std::size_t rows : {3u, 2u, 4u, 1u}) {  // 3+2 fit; 4 overflows; 1 fits
    auto t = make_elementwise_request(cpwl::FunctionKind::kTanh, random_fix(rows, 4, rng));
    ids.push_back(t.request.id);
    pending.push_back(std::move(t.request));
  }
  const auto batch = batcher.take_batch(pending);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, ids[0]);
  EXPECT_EQ(batch[1].id, ids[1]);
  EXPECT_EQ(batch[2].id, ids[3]);  // the 1-row request leapfrogs the 4-row one
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending.front().id, ids[2]);
}

// ---------------------------------------------------------------------- pool

TEST(ServerPool, ServesManyRequestsBitIdentically) {
  ServerPoolConfig cfg;
  cfg.workers = 3;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(16);
  std::vector<FixMatrix> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 30; ++i) {
    inputs.push_back(random_fix(1 + i % 5, 8, rng, -3.0, 3.0));
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kGelu, inputs.back()));
  }
  OneSaAccelerator solo(small_config(ExecutionMode::kAnalytic));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().y, solo.elementwise(cpwl::FunctionKind::kGelu, inputs[i]).y)
        << "request " << i;
  }
}

TEST(ServerPool, DrainsCleanlyOnShutdown) {
  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(17);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 25; ++i)
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));

  pool.shutdown();  // must serve all 25 before returning
  EXPECT_EQ(pool.pending(), 0u);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    f.get();
  }
  EXPECT_EQ(pool.stats().completed(), 25u);
  // Closed pool rejects new work — typed, through the future, via the same
  // shed path a submit racing shutdown takes (never a bare throw, so the
  // submit call itself can't blow up mid-race).
  auto rejected =
      pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  EXPECT_THROW(rejected.get(), OverloadError);
  pool.shutdown();  // idempotent
}

TEST(ServerPool, TraceRequestMatchesDirectEstimate) {
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::bert_base_trace(16));
  auto future = pool.submit_trace(trace);
  const ServeResult got = future.get();
  pool.shutdown();

  const sim::TimingModel timing(cfg.accelerator.array);
  const auto want = nn::estimate_trace(*trace, timing);
  EXPECT_EQ(got.cycles.total(), want.cycles.total());
  EXPECT_DOUBLE_EQ(got.trace.latency_ms, want.latency_ms);
  EXPECT_DOUBLE_EQ(got.trace.gops, want.gops);
  EXPECT_EQ(got.mac_ops, nn::trace_mac_ops(*trace));

  // The worker charged its accelerator, so the fleet totals see the trace.
  const LifetimeTotals fleet = pool.fleet_lifetime();
  EXPECT_EQ(fleet.cycles.total(), want.cycles.total());
  EXPECT_EQ(fleet.mac_ops, nn::trace_mac_ops(*trace));
}

TEST(ServerPool, RotationBalancesSimulatedLoadExactly) {
  // 16 identical trace requests over 4 workers: rotation dispatch gives each
  // worker exactly 4, so per-worker busy cycles are equal and the fleet
  // makespan is total/4 — the mechanism behind the N-worker speedup of
  // bench/serving_throughput.cpp.
  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.dispatch = DispatchPolicy::kRotation;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(256, 32, 16, 4, 8));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(pool.submit_trace(trace));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const auto busy = pool.worker_busy_cycles();
  ASSERT_EQ(busy.size(), 4u);
  for (std::size_t w = 1; w < busy.size(); ++w) EXPECT_EQ(busy[w], busy[0]);
  EXPECT_EQ(pool.makespan_cycles(), busy[0]);
  EXPECT_EQ(pool.stats().total_cycles().total(), 4 * busy[0]);
}

TEST(ServerPool, LeastLoadedMatchesRotationOnUniformCosts) {
  // Identical costs: least-loaded with lowest-index tie-break degenerates to
  // the rotation schedule, so the uniform-traffic guarantees carry over.
  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.dispatch = DispatchPolicy::kLeastLoaded;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  const auto trace = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(256, 32, 16, 4, 8));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(pool.submit_trace(trace));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const auto busy = pool.worker_busy_cycles();
  ASSERT_EQ(busy.size(), 4u);
  for (std::size_t w = 1; w < busy.size(); ++w) EXPECT_EQ(busy[w], busy[0]);
}

TEST(ServerPool, LeastLoadedBalancesSkewedCostsBetterThanRotation) {
  // Heterogeneous traffic: one heavy trace followed by many light ones. The
  // rotation hands every second request to the worker already holding the
  // heavy trace; least-loaded routes the light stream to the other worker
  // until the assigned simulated cost evens out.
  const auto heavy =
      std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(2048, 64, 32, 8, 16));
  const auto light = std::make_shared<nn::WorkloadTrace>(nn::gcn_trace(64, 16, 8, 4, 4));
  const std::uint64_t heavy_macs = nn::trace_mac_ops(*heavy);
  const std::uint64_t light_macs = nn::trace_mac_ops(*light);
  ASSERT_GT(heavy_macs, 8 * light_macs);  // the skew the test depends on

  auto run = [&](DispatchPolicy policy) {
    ServerPoolConfig cfg;
    cfg.workers = 2;
    cfg.dispatch = policy;
    cfg.accelerator = small_config(ExecutionMode::kAnalytic);
    ServerPool pool(cfg);
    std::vector<std::future<ServeResult>> futures;
    futures.push_back(pool.submit_trace(heavy));
    for (int i = 0; i < 12; ++i) futures.push_back(pool.submit_trace(light));
    for (auto& f : futures) f.get();
    pool.shutdown();
    return pool.makespan_cycles();
  };

  const std::uint64_t rotation_makespan = run(DispatchPolicy::kRotation);
  const std::uint64_t least_loaded_makespan = run(DispatchPolicy::kLeastLoaded);
  // Rotation pins ~6 light traces behind the heavy one on worker 0;
  // least-loaded sends every light trace to worker 1 until the costs level,
  // so its makespan must be strictly better.
  EXPECT_LT(least_loaded_makespan, rotation_makespan);
}

TEST(ServerPool, LeastLoadedAssignedCostTracksEstimates) {
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.dispatch = DispatchPolicy::kLeastLoaded;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  // One request per batch so assigned costs map 1:1 to request estimates.
  cfg.batcher.max_batch_requests = 1;
  ServerPool pool(cfg);

  Rng rng(77);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(
        pool.submit_elementwise(cpwl::FunctionKind::kGelu, random_fix(2, 8, rng)));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const auto assigned = pool.assigned_cost();
  ASSERT_EQ(assigned.size(), 2u);
  // 6 equal-cost requests (2x8 elementwise = 32 MACs each) level to 3 each.
  EXPECT_EQ(assigned[0], assigned[1]);
  EXPECT_EQ(assigned[0] + assigned[1], 6u * 2u * 16u);
}

TEST(ServerPool, BatchesCompatibleRequestsTogether) {
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  cfg.batcher.max_batch_rows = 64;
  ServerPool pool(cfg);

  Rng rng(18);
  // Same function and width — all 6 should ride in few passes. The single
  // worker only starts consuming after the first pop, so later requests
  // accumulate and batch.
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kGelu, random_fix(4, 4, rng)));
  for (auto& f : futures) f.get();
  pool.shutdown();

  const ServeStats stats = pool.stats();
  EXPECT_EQ(stats.completed(), 6u);
  EXPECT_LE(stats.batches(), 6u);
  EXPECT_GT(stats.batch_fill(), 0.0);
  EXPECT_LE(stats.batch_fill(), 1.0);
}

// --------------------------------------------------------------------- stats

TEST(ServeStats, PercentilesAreMonotone) {
  ServeStats stats;
  BatchRecord record;
  record.requests = 9;
  record.rows = 9;
  record.padded_rows = 12;
  // Deliberately unsorted latencies.
  record.latency_ms = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0};
  stats.record_batch(record);

  double prev = 0.0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = stats.percentile_latency_ms(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(50.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(100.0), 9.0);
  EXPECT_THROW(stats.percentile_latency_ms(101.0), Error);
}

TEST(ServeStats, MergeAccumulatesEverything) {
  ServeStats a;
  ServeStats b;
  BatchRecord ra;
  ra.requests = 2;
  ra.rows = 4;
  ra.padded_rows = 8;
  ra.cycles.compute_cycles = 100;
  ra.mac_ops = 50;
  ra.latency_ms = {1.0, 2.0};
  BatchRecord rb;
  rb.requests = 1;
  rb.rows = 4;
  rb.padded_rows = 4;
  rb.cycles.compute_cycles = 40;
  rb.mac_ops = 20;
  rb.latency_ms = {10.0};
  a.record_batch(ra);
  b.record_batch(rb);

  a.merge(b);
  EXPECT_EQ(a.completed(), 3u);
  EXPECT_EQ(a.batches(), 2u);
  EXPECT_EQ(a.total_cycles().compute_cycles, 140u);
  EXPECT_EQ(a.total_mac_ops(), 70u);
  EXPECT_DOUBLE_EQ(a.batch_fill(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(a.percentile_latency_ms(100.0), 10.0);
}

TEST(ServeStats, PerClassLatencyAccounting) {
  // Latencies attribute to their request's scheduling class, so a bulk
  // flood can never hide an interactive p95. Hand-built records without a
  // class vector count as kNormal (backwards compatibility).
  ServeStats stats;
  BatchRecord record;
  record.requests = 5;
  record.rows = 5;
  record.padded_rows = 5;
  record.latency_ms = {1.0, 100.0, 2.0, 200.0, 3.0};
  record.latency_class = {Priority::kInteractive, Priority::kBulk, Priority::kInteractive,
                          Priority::kBulk, Priority::kInteractive};
  stats.record_batch(record);

  EXPECT_EQ(stats.class_completed(Priority::kInteractive), 3u);
  EXPECT_EQ(stats.class_completed(Priority::kBulk), 2u);
  EXPECT_EQ(stats.class_completed(Priority::kNormal), 0u);
  EXPECT_DOUBLE_EQ(stats.class_percentile_latency_ms(Priority::kInteractive, 95.0), 3.0);
  EXPECT_DOUBLE_EQ(stats.class_percentile_latency_ms(Priority::kBulk, 95.0), 200.0);
  EXPECT_DOUBLE_EQ(stats.class_mean_latency_ms(Priority::kInteractive), 2.0);
  EXPECT_DOUBLE_EQ(stats.class_percentile_latency_ms(Priority::kNormal, 95.0), 0.0);
  // The classless aggregate still sees everything.
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(100.0), 200.0);

  // Classless record: everything lands in kNormal.
  BatchRecord classless;
  classless.requests = 2;
  classless.rows = 2;
  classless.padded_rows = 2;
  classless.latency_ms = {7.0, 9.0};
  ServeStats other;
  other.record_batch(classless);
  EXPECT_EQ(other.class_completed(Priority::kNormal), 2u);

  // merge() folds the per-class series too.
  stats.merge(other);
  EXPECT_EQ(stats.class_completed(Priority::kNormal), 2u);
  EXPECT_EQ(stats.class_completed(Priority::kInteractive), 3u);
  EXPECT_DOUBLE_EQ(stats.class_percentile_latency_ms(Priority::kNormal, 100.0), 9.0);
}

TEST(ServeStats, PoolTracksPerClassLatencies) {
  // End-to-end: requests of three classes served by a real pool appear in
  // the merged per-class accounting with the right counts.
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(91);
  const ModelHandle handle = pool.register_model("mlp", make_mlp(4, 8, 2, rng));
  std::vector<std::future<ServeResult>> futures;
  const Priority classes[] = {Priority::kInteractive, Priority::kNormal, Priority::kBulk};
  for (int i = 0; i < 12; ++i) {
    SubmitOptions options;
    options.priority = classes[i % 3];
    futures.push_back(
        pool.submit_model(handle, tensor::random_uniform(2, 4, rng), options));
  }
  for (auto& f : futures) f.get();
  pool.shutdown();

  const ServeStats stats = pool.stats();
  EXPECT_EQ(stats.completed(), 12u);
  EXPECT_EQ(stats.class_completed(Priority::kInteractive), 4u);
  EXPECT_EQ(stats.class_completed(Priority::kNormal), 4u);
  EXPECT_EQ(stats.class_completed(Priority::kBulk), 4u);
  for (Priority c : classes) {
    EXPECT_GE(stats.class_percentile_latency_ms(c, 95.0),
              stats.class_percentile_latency_ms(c, 50.0));
    EXPECT_GT(stats.class_mean_latency_ms(c), 0.0);
  }
}

// ------------------------------------------------- lifetime counter merging

TEST(LifetimeTotals, CycleStatsMergeHelper) {
  sim::CycleStats a;
  a.fill_cycles = 1;
  a.compute_cycles = 2;
  a.drain_cycles = 3;
  a.memory_cycles = 4;
  a.ipf_cycles = 5;
  sim::CycleStats b;
  b.fill_cycles = 10;
  b.compute_cycles = 20;
  b.drain_cycles = 30;
  b.memory_cycles = 40;
  b.ipf_cycles = 50;

  const sim::CycleStats sum = a + b;
  EXPECT_EQ(sum.fill_cycles, 11u);
  EXPECT_EQ(sum.compute_cycles, 22u);
  EXPECT_EQ(sum.drain_cycles, 33u);
  EXPECT_EQ(sum.memory_cycles, 44u);
  EXPECT_EQ(sum.ipf_cycles, 55u);
  EXPECT_EQ(sum.total(), a.total() + b.total());
}

TEST(LifetimeTotals, MergeAcrossAcceleratorInstances) {
  Rng rng(19);
  OneSaAccelerator a(small_config(ExecutionMode::kAnalytic));
  OneSaAccelerator b(small_config(ExecutionMode::kAnalytic));
  const FixMatrix x = random_fix(4, 4, rng);
  a.gemm(x, x);
  b.elementwise(cpwl::FunctionKind::kRelu, x);

  LifetimeTotals fleet = a.lifetime();
  fleet.merge(b.lifetime());
  EXPECT_EQ(fleet.cycles, a.lifetime_cycles() + b.lifetime_cycles());
  EXPECT_EQ(fleet.mac_ops, a.lifetime_mac_ops() + b.lifetime_mac_ops());
}

// ------------------------------------------------------------ model registry

TEST(ModelRegistry, RegistersAndFreezesModels) {
  Rng rng(40);
  ModelRegistry registry;
  const ModelHandle handle = registry.add("mlp", make_mlp(6, 8, 3, rng));
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->name, "mlp");
  EXPECT_FALSE(handle->batchable);  // batching is opt-in (row coupling is unsafe)
  EXPECT_GT(handle->mac_ops_per_row, 0u);

  // get() returns the same shared entry (one weight copy per pool).
  EXPECT_EQ(registry.get("mlp"), handle);
  EXPECT_EQ(registry.find("mlp"), handle);
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_THROW(registry.get("nope"), Error);
  EXPECT_THROW(registry.add("mlp", make_mlp(6, 8, 3, rng)), Error);  // duplicate
  EXPECT_THROW(registry.add("null", nullptr), Error);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"mlp"});
}

TEST(ModelRegistry, CostTraceAndBatchabilityOptionsStick) {
  Rng rng(41);
  ModelRegistry registry;
  ModelOptions options;
  options.batchable = true;
  options.cost_trace = std::make_shared<const nn::WorkloadTrace>(nn::bert_base_trace(16));
  options.mac_ops_per_row = 12345;
  const ModelHandle handle = registry.add("bert", make_mlp(4, 4, 2, rng), options);
  EXPECT_TRUE(handle->batchable);
  EXPECT_EQ(handle->cost_trace, options.cost_trace);
  EXPECT_EQ(handle->mac_ops_per_row, 12345u);  // explicit override beats the census
  EXPECT_EQ(handle->cost_trace_macs, nn::trace_mac_ops(*options.cost_trace));

  // Admission control and least-loaded dispatch budget what execution will
  // charge: with a cost trace, the request cost is the trace's MACs (per
  // request, not per row); without one, rows x mac_ops_per_row.
  auto traced = make_model_request(handle, tensor::random_uniform(3, 4, rng));
  EXPECT_EQ(traced.request.cost, handle->cost_trace_macs);
  const ModelHandle plain = registry.add("plain", make_mlp(4, 4, 2, rng));
  auto untraced = make_model_request(plain, tensor::random_uniform(3, 4, rng));
  EXPECT_EQ(untraced.request.cost, 3 * plain->mac_ops_per_row);
}

// --------------------------------------------------------- real-model serving

TEST(ServerPool, ModelLogitsMatchDirectForwardBitExactly) {
  ServerPoolConfig cfg;
  cfg.workers = 3;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(42);
  const ModelHandle handle = pool.register_model("mlp", make_mlp(6, 16, 4, rng));

  std::vector<tensor::Matrix> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 24; ++i) {
    inputs.push_back(tensor::random_uniform(1 + i % 4, 6, rng, -1.0, 1.0));
    futures.push_back(pool.submit_model("mlp", inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult got = futures[i].get();
    EXPECT_EQ(got.kind, RequestKind::kModel);
    // Bit-exact vs the direct const forward on the shared weights.
    EXPECT_EQ(got.logits, handle->infer(inputs[i])) << "request " << i;
    EXPECT_GT(got.mac_ops, 0u);
    EXPECT_GT(got.cycles.total(), 0u);  // simulated charge rides along
  }
  pool.shutdown();
  // Real-model work shows up in the fleet's simulated accounting.
  EXPECT_GT(pool.fleet_lifetime().mac_ops, 0u);
  EXPECT_GT(pool.makespan_cycles(), 0u);
}

TEST(ServerPool, BatchedModelRequestsStayBitExact) {
  // Single worker so later requests pile up and batch together; batched
  // infer must slice back exactly what a solo forward produces.
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  cfg.batcher.max_batch_rows = 64;
  cfg.batcher.max_batch_requests = 16;
  ServerPool pool(cfg);

  Rng rng(43);
  const ModelHandle handle =
      pool.register_model("mlp", make_mlp(5, 12, 3, rng), batchable_options());

  std::vector<tensor::Matrix> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 20; ++i) {
    inputs.push_back(tensor::random_uniform(2 + i % 3, 5, rng, -1.0, 1.0));
    futures.push_back(pool.submit_model(handle, inputs.back()));
  }
  std::size_t max_batch = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult got = futures[i].get();
    max_batch = std::max(max_batch, got.batch_requests);
    EXPECT_EQ(got.logits, handle->infer(inputs[i])) << "request " << i;
  }
  pool.shutdown();
  EXPECT_EQ(pool.stats().completed(), 20u);
  // The single consumer should have packed at least one multi-request batch.
  EXPECT_GT(max_batch, 1u);
}

TEST(ServerPool, NonBatchableModelsServeOneRequestPerPass) {
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(44);
  const ModelHandle handle = pool.register_model("solo-mlp", make_mlp(4, 8, 2, rng));

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(pool.submit_model(handle, tensor::random_uniform(2, 4, rng)));
  for (auto& f : futures) EXPECT_EQ(f.get().batch_requests, 1u);
  pool.shutdown();
  EXPECT_EQ(pool.stats().batches(), 8u);
}

TEST(ServerPool, PrepackedRegistryLogitsBitExactVsTrainingForward) {
  // Registration pre-packs every Linear's weights, and the served infer()
  // fuses Linear+ReLU pairs into packed GEMM epilogues. None of that may
  // move a single bit: served logits must equal the per-layer TRAINING
  // forward of an identically-initialized model (the unfused reference
  // composition, matmul + bias broadcast + activation as separate passes).
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng_served(77);
  Rng rng_reference(77);  // identical init stream -> identical weights
  const ModelHandle handle = pool.register_model("mlp", make_mlp(6, 16, 4, rng_served));
  auto reference = make_mlp(6, 16, 4, rng_reference);

  Rng rng_inputs(78);
  std::vector<tensor::Matrix> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i) {
    inputs.push_back(tensor::random_uniform(2, 6, rng_inputs, -1.0, 1.0));
    futures.push_back(pool.submit_model(handle, inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().logits, reference->forward(inputs[i])) << "request " << i;
  }
  pool.shutdown();
}

TEST(Batcher, ModelCompatibilityRules) {
  Rng rng(45);
  ModelRegistry registry;
  const ModelHandle mlp_a = registry.add("a", make_mlp(4, 8, 2, rng), batchable_options());
  const ModelHandle mlp_b = registry.add("b", make_mlp(4, 8, 2, rng), batchable_options());
  const ModelHandle mlp_c = registry.add("c", make_mlp(4, 8, 2, rng));  // default: solo

  auto a1 = make_model_request(mlp_a, tensor::random_uniform(2, 4, rng));
  auto a2 = make_model_request(mlp_a, tensor::random_uniform(3, 4, rng));
  auto b1 = make_model_request(mlp_b, tensor::random_uniform(2, 4, rng));
  auto c1 = make_model_request(mlp_c, tensor::random_uniform(2, 4, rng));
  auto c2 = make_model_request(mlp_c, tensor::random_uniform(2, 4, rng));
  EXPECT_TRUE(DynamicBatcher::compatible(a1.request, a2.request));   // same model
  EXPECT_FALSE(DynamicBatcher::compatible(a1.request, b1.request));  // other model
  EXPECT_FALSE(DynamicBatcher::compatible(c1.request, c2.request));  // non-batchable
}

// ------------------------------------------- priority / deadline scheduling

/// Drain `queue` from a single worker and return the request ids in service
/// order (max_batch_requests = 1 so nothing rides along).
std::vector<RequestId> service_order(RequestQueue& queue, std::size_t n) {
  std::vector<RequestId> order;
  for (std::size_t i = 0; i < n; ++i) {
    auto batch = queue.pop_batch(0);
    for (auto& req : batch) {
      order.push_back(req.id);
      req.promise.set_value({});  // futures must not dangle
    }
  }
  return order;
}

BatcherConfig one_request_batches() {
  BatcherConfig cfg;
  cfg.max_batch_requests = 1;
  return cfg;
}

TEST(Scheduling, EdfOrdersWithinPriorityClass) {
  RequestQueue queue(1, DynamicBatcher(one_request_batches()));
  Rng rng(50);

  SubmitOptions late;
  late.deadline_ms = 5000.0;
  SubmitOptions soon;
  soon.deadline_ms = 50.0;
  SubmitOptions none;  // no deadline — sorts after every dated request

  auto a = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), none);
  auto b = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), late);
  auto c = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), soon);
  const RequestId ida = a.request.id, idb = b.request.id, idc = c.request.id;
  queue.push(std::move(a.request));
  queue.push(std::move(b.request));
  queue.push(std::move(c.request));

  const auto order = service_order(queue, 3);
  EXPECT_EQ(order, (std::vector<RequestId>{idc, idb, ida}));
}

TEST(Scheduling, PriorityClassesBeatDeadlines) {
  RequestQueue queue(1, DynamicBatcher(one_request_batches()));
  Rng rng(51);

  SubmitOptions bulk_soon;
  bulk_soon.priority = Priority::kBulk;
  bulk_soon.deadline_ms = 1.0;  // earliest deadline, lowest class
  SubmitOptions normal;
  normal.priority = Priority::kNormal;
  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;

  auto a = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), bulk_soon);
  auto b = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), normal);
  auto c =
      make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), interactive);
  const RequestId ida = a.request.id, idb = b.request.id, idc = c.request.id;
  queue.push(std::move(a.request));
  queue.push(std::move(b.request));
  queue.push(std::move(c.request));

  const auto order = service_order(queue, 3);
  EXPECT_EQ(order, (std::vector<RequestId>{idc, idb, ida}));
}

TEST(Scheduling, FifoTieBreakWithinEqualClassAndDeadline) {
  RequestQueue queue(1, DynamicBatcher(one_request_batches()));
  Rng rng(52);
  std::vector<RequestId> ids;
  for (int i = 0; i < 4; ++i) {
    auto t = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng));
    ids.push_back(t.request.id);
    queue.push(std::move(t.request));
  }
  EXPECT_EQ(service_order(queue, 4), ids);
}

TEST(Scheduling, DeadlineMissesAreCountedPerRequest) {
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(53);
  SubmitOptions hopeless;
  hopeless.deadline_ms = 1e-6;  // already blown by the time a worker runs it
  auto missed = pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng),
                                        hopeless);
  auto relaxed = pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));

  EXPECT_TRUE(missed.get().deadline_missed);
  EXPECT_FALSE(relaxed.get().deadline_missed);
  pool.shutdown();
  EXPECT_EQ(pool.stats().deadline_misses(), 1u);
}

TEST(Scheduling, ResultCarriesPriorityClass) {
  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);
  Rng rng(54);
  SubmitOptions opts;
  opts.priority = Priority::kInteractive;
  auto f = pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), opts);
  EXPECT_EQ(f.get().priority, Priority::kInteractive);
  pool.shutdown();
}

// ----------------------------------------------------------- admission control

TEST(Admission, RejectPolicyShedsTheNewcomer) {
  AdmissionConfig admission;
  admission.max_pending_requests = 2;
  admission.policy = OverloadPolicy::kReject;
  RequestQueue queue(1, DynamicBatcher(one_request_batches()),
                     DispatchPolicy::kLeastLoaded, admission);
  Rng rng(60);

  auto a = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng));
  auto b = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng));
  auto c = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng));
  EXPECT_TRUE(queue.push(std::move(a.request)));
  EXPECT_TRUE(queue.push(std::move(b.request)));
  EXPECT_FALSE(queue.push(std::move(c.request)));  // over the cap — shed

  EXPECT_EQ(queue.sheds(), 1u);
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_THROW(c.result.get(), OverloadError);
  service_order(queue, 2);  // drain so the remaining futures resolve
  a.result.get();
  b.result.get();
}

TEST(Admission, BacklogCostBudgetSheds) {
  AdmissionConfig admission;
  admission.max_backlog_cost = 40;  // each 2x4 elementwise request costs 16 MACs
  RequestQueue queue(1, DynamicBatcher(one_request_batches()),
                     DispatchPolicy::kLeastLoaded, admission);
  Rng rng(61);

  std::vector<TaggedRequest> tagged;
  for (int i = 0; i < 3; ++i)
    tagged.push_back(make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
  EXPECT_TRUE(queue.push(std::move(tagged[0].request)));
  EXPECT_EQ(queue.backlog_cost(), 16u);
  EXPECT_TRUE(queue.push(std::move(tagged[1].request)));
  EXPECT_EQ(queue.backlog_cost(), 32u);
  EXPECT_FALSE(queue.push(std::move(tagged[2].request)));  // 48 > 40
  EXPECT_THROW(tagged[2].result.get(), OverloadError);
  service_order(queue, 2);
}

TEST(Admission, DropOldestEvictsLowestClassFirst) {
  AdmissionConfig admission;
  admission.max_pending_requests = 2;
  admission.policy = OverloadPolicy::kDropOldest;
  RequestQueue queue(1, DynamicBatcher(one_request_batches()),
                     DispatchPolicy::kLeastLoaded, admission);
  Rng rng(62);

  SubmitOptions bulk;
  bulk.priority = Priority::kBulk;
  auto a = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), bulk);
  auto b = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng));
  auto c = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng));
  const RequestId idb = b.request.id, idc = c.request.id;
  queue.push(std::move(a.request));
  queue.push(std::move(b.request));
  EXPECT_TRUE(queue.push(std::move(c.request)));  // evicts the bulk request

  EXPECT_EQ(queue.sheds(), 1u);
  EXPECT_THROW(a.result.get(), OverloadError);
  EXPECT_EQ(service_order(queue, 2), (std::vector<RequestId>{idb, idc}));
}

TEST(Admission, DropOldestNeverEvictsAboveTheNewcomer) {
  AdmissionConfig admission;
  admission.max_pending_requests = 2;
  admission.policy = OverloadPolicy::kDropOldest;
  RequestQueue queue(1, DynamicBatcher(one_request_batches()),
                     DispatchPolicy::kLeastLoaded, admission);
  Rng rng(63);

  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;
  SubmitOptions bulk;
  bulk.priority = Priority::kBulk;
  auto a = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), interactive);
  auto b = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), interactive);
  auto c = make_elementwise_request(cpwl::FunctionKind::kRelu, random_fix(1, 4, rng), bulk);
  queue.push(std::move(a.request));
  queue.push(std::move(b.request));
  EXPECT_FALSE(queue.push(std::move(c.request)));  // everything pending outranks it

  EXPECT_EQ(queue.sheds(), 1u);
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_THROW(c.result.get(), OverloadError);
  service_order(queue, 2);
}

TEST(Admission, PoolAccountsShedsAndServesTheRest) {
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  cfg.admission.max_pending_requests = 4;
  cfg.admission.policy = OverloadPolicy::kReject;
  ServerPool pool(cfg);

  Rng rng(64);
  constexpr int kSubmitted = 40;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kSubmitted; ++i)
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));

  std::size_t served = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++served;
    } catch (const OverloadError&) {
      ++shed;
    }
  }
  pool.shutdown();
  // Every accepted request completes; every shed one is accounted; nothing
  // is lost (how many shed depends on worker/submitter timing).
  EXPECT_EQ(served + shed, static_cast<std::size_t>(kSubmitted));
  EXPECT_EQ(pool.stats().completed(), served);
  EXPECT_EQ(pool.stats().sheds(), shed);
  EXPECT_EQ(pool.sheds(), shed);
}

// ------------------------------------------------- thread-budget regression

/// Live thread count of this process (Linux: Threads: line of
/// /proc/self/status); 0 when unavailable.
std::size_t live_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream field(line.substr(8));
      std::size_t count = 0;
      field >> count;
      return count;
    }
  }
  return 0;
}

TEST(ServerPool, ReservesKernelLanesOnFirstModelRegistration) {
  using tensor::kernels::ThreadPool;
  const std::size_t base_reserved = ThreadPool::instance().reserved();
  Rng rng(69);

  ServerPoolConfig cfg;
  cfg.workers = 4;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  {
    ServerPool pool(cfg);
    // Simulated-only pools never run worker-side GEMMs and must not
    // throttle other kernel users.
    EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved);
    // A registration that fails validation must not reserve either.
    EXPECT_THROW(pool.register_model("bad", nullptr), Error);
    EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved);
    // First registered model: the worker fleet is reserved so worker-side
    // GEMM fan-out shrinks instead of oversubscribing.
    pool.register_model("a", make_mlp(4, 8, 2, rng));
    EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved + 4);
    pool.register_model("b", make_mlp(4, 8, 2, rng));  // once, not per model
    EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved + 4);
    pool.shutdown();
    EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved);
    pool.shutdown();  // idempotent: released exactly once
    EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved);
  }
  EXPECT_EQ(ThreadPool::instance().reserved(), base_reserved);
}

TEST(ServerPool, ModelErrorsFailTheFutureNotTheProcess) {
  ServerPoolConfig cfg;
  cfg.workers = 2;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(71);
  pool.register_model("mlp", make_mlp(6, 8, 3, rng));
  // Wrong input width: the worker-side infer throws; the exception must
  // land in THIS request's future, and the pool must keep serving.
  auto bad = pool.submit_model("mlp", tensor::random_uniform(2, 5, rng));
  EXPECT_THROW(bad.get(), Error);

  auto good = pool.submit_model("mlp", tensor::random_uniform(2, 6, rng));
  EXPECT_EQ(good.get().logits.cols(), 3u);
  pool.shutdown();
  EXPECT_EQ(pool.stats().completed(), 1u);  // the failed request never completes
}

TEST(ServerPool, RowCountChangingModelServesSoloButFailsBatched) {
  Rng rng(72);
  // Sequence-pool head: (rows x 4) in, (1 x 2) out — row count changes.
  auto make_pooling_model = [&rng] {
    auto model = std::make_unique<nn::Sequential>();
    model->add(std::make_unique<nn::Linear>(4, 8, rng));
    model->add(std::make_unique<nn::SequenceMeanPool>());
    model->add(std::make_unique<nn::Linear>(8, 2, rng));
    return model;
  };

  ServerPoolConfig cfg;
  cfg.workers = 1;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);
  const ModelHandle ok = pool.register_model("pooled", make_pooling_model());
  const tensor::Matrix x = tensor::random_uniform(5, 4, rng);
  // Correctly registered (default non-batchable): whole output handed back.
  const ServeResult got = pool.submit_model(ok, x).get();
  EXPECT_EQ(got.logits, ok->infer(x));
  EXPECT_EQ(got.logits.rows(), 1u);

  pool.shutdown();

  // Misregistered as batchable: a multi-request batch must fail BOTH futures
  // (slicing a 1-row output across 10 input rows would read out of bounds)
  // instead of crashing. Built by hand and executed directly so the batched
  // path runs deterministically, not by worker timing.
  ModelRegistry registry;
  const ModelHandle bad =
      registry.add("pooled-batchable", make_pooling_model(), batchable_options());
  std::vector<ServeRequest> batch;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 2; ++i) {
    auto t = make_model_request(bad, x);
    batch.push_back(std::move(t.request));
    futures.push_back(std::move(t.result));
  }
  OneSaAccelerator accel(small_config(ExecutionMode::kAnalytic));
  const BatchRecord record = DynamicBatcher().execute(batch, accel, 0);
  EXPECT_EQ(record.requests, 0u);  // failed batch: nothing completed or charged
  EXPECT_EQ(record.cycles.total(), 0u);
  for (auto& f : futures) EXPECT_THROW(f.get(), Error);
}

TEST(ServerPool, LiveThreadsStayBoundedUnderRealInference) {
  const std::size_t base = live_threads();
  if (base == 0) GTEST_SKIP() << "no /proc/self/status on this platform";
  // Touch the shared kernel pool first so its workers count into the base.
  tensor::kernels::ThreadPool::instance();
  const std::size_t with_kernel_pool = live_threads();

  ServerPoolConfig cfg;
  cfg.workers = 8;
  cfg.accelerator = small_config(ExecutionMode::kAnalytic);
  ServerPool pool(cfg);

  Rng rng(70);
  pool.register_model("mlp", make_mlp(16, 32, 8, rng));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit_model("mlp", tensor::random_uniform(4, 16, rng)));
  // Mid-flight and at completion, the process runs exactly the serve workers
  // on top of the base — kernel GEMMs inside workers never spawn threads.
  EXPECT_LE(live_threads(), with_kernel_pool + cfg.workers);
  for (auto& f : futures) f.get();
  EXPECT_LE(live_threads(), with_kernel_pool + cfg.workers);
  pool.shutdown();
  EXPECT_LE(live_threads(), with_kernel_pool);
}

// ------------------------------------------------------- shared CPWL tables

TEST(SharedTables, WorkersAliasOneTableSetBitIdentically) {
  Rng rng(20);
  OneSaAccelerator owner(small_config(ExecutionMode::kAnalytic));
  OneSaAccelerator alias(small_config(ExecutionMode::kAnalytic), owner.shared_tables());
  EXPECT_EQ(&owner.tables(), &alias.tables());

  const FixMatrix x = random_fix(5, 5, rng, -4.0, 4.0);
  EXPECT_EQ(owner.elementwise(cpwl::FunctionKind::kTanh, x).y,
            alias.elementwise(cpwl::FunctionKind::kTanh, x).y);
}

TEST(SharedTables, GranularityMismatchRejected) {
  OneSaAccelerator owner(small_config(ExecutionMode::kAnalytic));
  OneSaConfig other = small_config(ExecutionMode::kAnalytic);
  other.granularity = 1.0;
  EXPECT_THROW(OneSaAccelerator(other, owner.shared_tables()), ConfigError);
}

TEST(SharedTables, FracBitsMismatchRejected) {
  // A table set built directly with a different fixed-point format must not
  // be silently accepted (OneSaConfig itself can only express Q6.9, so this
  // guards hand-built sets).
  const auto q8_tables = std::make_shared<const cpwl::TableSet>(0.25, /*frac_bits=*/8);
  EXPECT_THROW(OneSaAccelerator(small_config(ExecutionMode::kAnalytic), q8_tables),
               ConfigError);
}

}  // namespace
}  // namespace onesa::serve
