// Tests for the CPWL approximation engine — the core mechanism of ONE-SA.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "cpwl/approx_error.hpp"
#include "cpwl/segment_table.hpp"

namespace onesa::cpwl {
namespace {

SegmentTable build(FunctionKind kind, double granularity) {
  SegmentTableConfig cfg;
  cfg.granularity = granularity;
  return SegmentTable::build(kind, cfg);
}

TEST(SegmentTable, ExactAtSegmentEndpoints) {
  // The CPWL line interpolates the curve at segment endpoints.
  const auto t = build(FunctionKind::kGelu, 0.25);
  for (double x = -8.0; x <= 8.0; x += 0.25) {
    EXPECT_NEAR(t.eval(x), eval_reference(FunctionKind::kGelu, x), 1e-9) << x;
  }
}

TEST(SegmentTable, ReluIsExactEverywhere) {
  // ReLU is piecewise linear with a breakpoint at a segment boundary, so
  // CPWL reproduces it exactly (for segment-aligned granularity).
  const auto t = build(FunctionKind::kRelu, 0.5);
  for (double x = -7.9; x <= 7.9; x += 0.0317) {
    EXPECT_NEAR(t.eval(x), eval_reference(FunctionKind::kRelu, x), 1e-12) << x;
  }
}

TEST(SegmentTable, ErrorBoundQuadraticInGranularity) {
  // For a C^2 function, interpolation error per segment is bounded by
  // g^2 / 8 * max|f''|. For sigmoid, max|f''| ~ 0.0963.
  for (double g : {0.125, 0.25, 0.5}) {
    const auto report =
        measure_error(FunctionKind::kSigmoid, build(FunctionKind::kSigmoid, g));
    EXPECT_LE(report.max_abs_error, g * g / 8.0 * 0.1 + 1e-9) << g;
  }
}

TEST(SegmentTable, ErrorDecreasesWithGranularity) {
  const auto reports =
      granularity_sweep(FunctionKind::kGelu, {1.0, 0.5, 0.25, 0.125, 0.0625});
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_LE(reports[i].max_abs_error, reports[i - 1].max_abs_error)
        << "granularity " << reports[i].granularity;
  }
}

TEST(SegmentTable, CappingUsesBoundarySegmentLine) {
  const auto t = build(FunctionKind::kGelu, 0.25);
  // Far beyond the domain, GELU(x) ~ x; the top boundary segment's line has
  // slope ~1, intercept ~0, so the capped evaluation extends it.
  const double far = 20.0;
  const int top = t.max_segment();
  EXPECT_EQ(t.segment_index(far), top);
  EXPECT_NEAR(t.eval(far), t.k(top) * far + t.b(top), 1e-12);
  // And below: GELU -> 0.
  const int bottom = t.min_segment();
  EXPECT_EQ(t.segment_index(-20.0), bottom);
  EXPECT_NEAR(t.eval(-20.0), t.k(bottom) * -20.0 + t.b(bottom), 1e-12);
}

TEST(SegmentTable, ShiftIndexableForPowersOfTwo) {
  EXPECT_TRUE(build(FunctionKind::kGelu, 0.25).shift_indexable());
  EXPECT_TRUE(build(FunctionKind::kGelu, 0.5).shift_indexable());
  EXPECT_TRUE(build(FunctionKind::kGelu, 1.0).shift_indexable());
  EXPECT_TRUE(build(FunctionKind::kGelu, 2.0).shift_indexable());
  EXPECT_FALSE(build(FunctionKind::kGelu, 0.1).shift_indexable());
  EXPECT_FALSE(build(FunctionKind::kGelu, 0.75).shift_indexable());
}

TEST(SegmentTable, ShiftAmountMatchesFormula) {
  // Q6.9: g = 2^e, shift = 9 + e.
  EXPECT_EQ(build(FunctionKind::kGelu, 0.25).shift_amount(), 7);
  EXPECT_EQ(build(FunctionKind::kGelu, 0.5).shift_amount(), 8);
  EXPECT_EQ(build(FunctionKind::kGelu, 1.0).shift_amount(), 9);
}

// The load-bearing hardware property: for every INT16 raw value, the shift
// path of the data-addressing unit gives the same (capped) segment as the
// arithmetic divide path.
class ShiftVsDivide : public ::testing::TestWithParam<double> {};

TEST_P(ShiftVsDivide, AgreeOnEveryRawValue) {
  const auto t = build(FunctionKind::kGelu, GetParam());
  ASSERT_TRUE(t.shift_indexable());
  for (int raw = -32768; raw <= 32767; ++raw) {
    const auto r = static_cast<std::int16_t>(raw);
    const double x = static_cast<double>(r) / 512.0;
    EXPECT_EQ(t.segment_index_raw(r), t.segment_index(x)) << "raw " << raw;
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoGranularities, ShiftVsDivide,
                         ::testing::Values(0.125, 0.25, 0.5, 1.0, 2.0));

TEST(SegmentTable, EvalFixedTracksDoubleEval) {
  const auto t = build(FunctionKind::kGelu, 0.25);
  for (double x = -6.0; x <= 6.0; x += 0.0173) {
    const auto fx = fixed::Fix16::from_double(x);
    const double got = t.eval_fixed(fx).to_double();
    const double want = t.eval(fx.to_double());
    // Error budget: quantized k/b (each <= ulp/2, k error scaled by |x|<=8)
    // plus the final rounding.
    EXPECT_NEAR(got, want, fixed::Fix16::resolution() * (2.0 + std::abs(x))) << x;
  }
}

TEST(SegmentTable, BatchEvalFixedBitExactWithScalarAcrossFullRawRange) {
  // eval_fixed_batch carries a SIMD fast path on the shift-indexable route;
  // its contract is bit-exactness with eval_fixed for EVERY int16 input.
  // Sweep the entire raw range for a shift-indexable table, a divide-path
  // table (non-power-of-two granularity) and a non-default Q format, with a
  // batch length that exercises both the vector body and the scalar tail.
  SegmentTableConfig q8;
  q8.frac_bits = 8;
  const SegmentTable tables[] = {
      build(FunctionKind::kGelu, 0.25),
      build(FunctionKind::kSigmoid, 0.1),  // not a power of two: divide path
      SegmentTable::build(FunctionKind::kTanh, q8),
  };
  for (const SegmentTable& t : tables) {
    std::vector<fixed::Fix16> x;
    x.reserve(65536);
    for (int raw = std::numeric_limits<std::int16_t>::min();
         raw <= std::numeric_limits<std::int16_t>::max(); ++raw) {
      x.push_back(fixed::Fix16::from_raw(static_cast<std::int16_t>(raw)));
    }
    std::vector<fixed::Fix16> y(x.size());
    t.eval_fixed_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i].raw(), t.eval_fixed(x[i]).raw())
          << t.name() << " raw input " << x[i].raw();
    }
    // Odd length: the last 13 elements run down the scalar tail.
    const std::size_t odd = 16 * 3 + 13;
    std::vector<fixed::Fix16> y2(odd);
    t.eval_fixed_batch(std::span<const fixed::Fix16>(x.data(), odd),
                       std::span<fixed::Fix16>(y2.data(), odd));
    for (std::size_t i = 0; i < odd; ++i) ASSERT_EQ(y2[i].raw(), y[i].raw());
  }
}

TEST(SegmentTable, TableBytesMatchesSegmentCount) {
  const auto t = build(FunctionKind::kGelu, 0.25);
  // Domain [-8, 8] at 0.25 -> 64 segments, 2 INT16 params each.
  EXPECT_EQ(t.segment_count(), 64u);
  EXPECT_EQ(t.table_bytes(), 64u * 4u);
}

TEST(SegmentTable, ReciprocalBoundarySegmentIsFinite) {
  // The first segment of 1/x is clipped to the domain edge, so k and b stay
  // finite even though the segment nominally starts at 0.
  const auto t = build(FunctionKind::kReciprocal, 0.25);
  const int s0 = t.min_segment();
  EXPECT_TRUE(std::isfinite(t.k(s0)));
  EXPECT_TRUE(std::isfinite(t.b(s0)));
  // At the domain's low edge the approximation interpolates the curve.
  const double lo = t.domain().lo;
  EXPECT_NEAR(t.eval(lo), 1.0 / lo, 1e-9);
}

TEST(SegmentTable, InvalidConfigsThrow) {
  SegmentTableConfig bad;
  bad.granularity = -1.0;
  EXPECT_THROW(SegmentTable::build(FunctionKind::kGelu, bad), Error);
  SegmentTableConfig empty;
  empty.granularity = 0.25;
  empty.domain = {3.0, 3.0};
  EXPECT_THROW(
      SegmentTable::build_custom([](double x) { return x; }, "id", empty), Error);
}

TEST(SegmentTable, CustomFunctionSupported) {
  // The "one-size-fits-all" promise: arbitrary scalar nonlinearity.
  SegmentTableConfig cfg;
  cfg.granularity = 0.125;
  cfg.domain = {0.0, 4.0};
  const auto t = SegmentTable::build_custom(
      [](double x) { return std::log1p(x); }, "log1p", cfg);
  for (double x = 0.0; x <= 4.0; x += 0.0117) {
    EXPECT_NEAR(t.eval(x), std::log1p(x), 0.125 * 0.125 / 8.0 * 1.0 + 1e-9) << x;
  }
}

TEST(TableSet, ProvidesAllCatalogFunctions) {
  const TableSet set(0.25);
  for (FunctionKind kind : all_functions()) {
    EXPECT_EQ(set.get(kind).name(), function_name(kind));
    EXPECT_EQ(set.get(kind).granularity(), 0.25);
  }
  EXPECT_GT(set.total_table_bytes(), 0u);
}

TEST(TableSet, PerFunctionGranularityOverrides) {
  const TableSet set(0.5, {{FunctionKind::kExp, 0.125}, {FunctionKind::kGelu, 0.25}});
  EXPECT_DOUBLE_EQ(set.get(FunctionKind::kExp).granularity(), 0.125);
  EXPECT_DOUBLE_EQ(set.get(FunctionKind::kGelu).granularity(), 0.25);
  EXPECT_DOUBLE_EQ(set.get(FunctionKind::kTanh).granularity(), 0.5);
  // Finer exp table means more bytes than the uniform-0.5 set.
  const TableSet uniform(0.5);
  EXPECT_GT(set.total_table_bytes(), uniform.total_table_bytes());
}

TEST(ApproxError, ChooseGranularityMeetsTolerance) {
  const double g = choose_granularity(FunctionKind::kGelu, 0.01);
  const auto report = measure_error(FunctionKind::kGelu, build(FunctionKind::kGelu, g));
  EXPECT_LE(report.max_abs_error, 0.01);
  // And it is the *largest* qualifying power of two: doubling it fails.
  const auto worse =
      measure_error(FunctionKind::kGelu, build(FunctionKind::kGelu, g * 2.0));
  EXPECT_GT(worse.max_abs_error, 0.01);
}

TEST(ApproxError, ImpossibleToleranceThrows) {
  EXPECT_THROW(choose_granularity(FunctionKind::kExp, 1e-12), ConfigError);
}

// Every catalog function is well approximated at the paper's default 0.25
// granularity (the basis of Table III's "negligible loss" claim).
class AllFunctionsAtDefault : public ::testing::TestWithParam<FunctionKind> {};

TEST_P(AllFunctionsAtDefault, BoundedRelativeOrAbsoluteError) {
  const auto kind = GetParam();
  const auto report = measure_error(kind, build(kind, 0.25));
  // Reciprocal/rsqrt are steep near the domain edge; allow a looser bound.
  const double bound = positive_only(kind) ? 0.6 : 0.02;
  EXPECT_LE(report.max_abs_error, bound) << function_name(kind);
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllFunctionsAtDefault,
                         ::testing::ValuesIn(all_functions()),
                         [](const auto& info) {
                           return std::string(function_name(info.param));
                         });

}  // namespace
}  // namespace onesa::cpwl
