// Kernel-vs-reference equivalence: the blocked/threaded tensor kernels and
// the batched CPWL evaluators must reproduce the seed's scalar loops —
// bit-exactly where the contract says exact (deterministic mode, elementwise,
// transpose, INT16 batch eval), and within 1e-12 relative where the blocked
// GEMM reassociates the k-sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "cpwl/segment_table.hpp"
#include "nn/activations.hpp"
#include "tensor/kernels/elementwise.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/thread_pool.hpp"
#include "tensor/kernels/transpose.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using tensor::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  return tensor::random_uniform(rows, cols, rng, -2.0, 2.0);
}

/// max |a-b| scaled by max |b| (0-safe).
double relative_max_error(const Matrix& a, const Matrix& b) {
  double scale = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) scale = std::max(scale, std::abs(b.at_flat(i)));
  if (scale == 0.0) scale = 1.0;
  return tensor::max_abs_distance(a, b) / scale;
}

// Shapes chosen to hit every packing edge: empty, single row/col/inner,
// exact multiples of the micro-tile, one-off-from-block sizes, and shapes
// larger than one MC x KC x NC block.
struct Shape {
  std::size_t m, k, n;
};
const Shape kGemmShapes[] = {
    {0, 5, 3},  {5, 0, 3},   {5, 3, 0},   {1, 1, 1},   {1, 7, 9},    {7, 13, 1},
    {4, 8, 8},  {8, 8, 8},   {7, 13, 9},  {16, 16, 16}, {33, 17, 65}, {65, 64, 63},
    {70, 300, 40}, {128, 64, 96}, {3, 257, 5}};

TEST(GemmKernel, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(7);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    Matrix fast(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    tensor::kernels::gemm_blocked(a.data().data(), b.data().data(), fast.data().data(),
                                  s.m, s.k, s.n);
    EXPECT_LE(relative_max_error(fast, ref), 1e-12)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, DispatcherMatchesReferenceAcrossShapes) {
  Rng rng(8);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const Matrix fast = tensor::matmul(a, b);
    EXPECT_LE(relative_max_error(fast, ref), 1e-12)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, DeterministicModeIsBitExactWithReference) {
  const bool prev = tensor::kernels::deterministic();  // keep env-driven mode
  tensor::kernels::set_deterministic(true);
  Rng rng(9);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const Matrix fast = tensor::matmul(a, b);
    EXPECT_EQ(fast, ref) << s.m << "x" << s.k << "x" << s.n;  // bit-exact
  }
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmKernel, MultiThreadMatchesSingleThreadBitExactly) {
  // Row-sliced threading never reassociates any output element's sum, so the
  // threaded path must equal the single-thread blocked path exactly.
  Rng rng(10);
  const std::size_t m = 97, k = 129, n = 65;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix st(m, n);
  tensor::kernels::gemm_blocked(a.data().data(), b.data().data(), st.data().data(), m, k,
                                n);

  tensor::kernels::ThreadPool pool(4);
  const std::size_t per = 28;  // ceil(97 rows / 4 slices), rounded up to MR=4
  Matrix mt(m, n);
  pool.run(4, [&](std::size_t part) {
    const std::size_t lo = std::min(m, part * per);
    const std::size_t hi = std::min(m, lo + per);
    if (lo < hi)
      tensor::kernels::gemm_blocked(a.data().data() + lo * k, b.data().data(),
                                    mt.data().data() + lo * n, hi - lo, k, n);
  });
  EXPECT_EQ(mt, st);
}

// ------------------------------------------------------------ packed GEMM

TEST(PackedB, RoundTripsEveryElementAcrossShapes) {
  // Packing must be loss-free and the at() accessor must invert the sliver
  // layout exactly — the reference-order fallbacks depend on it.
  Rng rng(21);
  for (const Shape& s : kGemmShapes) {
    const Matrix b = random_matrix(s.k, s.n, rng);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    ASSERT_EQ(packed.k(), s.k);
    ASSERT_EQ(packed.n(), s.n);
    for (std::size_t kk = 0; kk < s.k; ++kk)
      for (std::size_t j = 0; j < s.n; ++j)
        ASSERT_EQ(packed.at(kk, j), b(kk, j)) << s.k << "x" << s.n;
  }
}

TEST(GemmPacked, MatchesDispatcherBitExactlyAcrossShapes) {
  // gemm_packed shares the dispatch criterion and loop orders with gemm(),
  // so on every shape — tiny/reference, blocked, threaded — the packed path
  // must reproduce the unpacked dispatcher bit for bit.
  Rng rng(22);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix want = tensor::matmul(a, b);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    Matrix got(s.m, s.n);
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m);
    EXPECT_EQ(got, want) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmPacked, DeterministicModeBitExactWithReference) {
  const bool prev = tensor::kernels::deterministic();
  tensor::kernels::set_deterministic(true);
  Rng rng(23);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    Matrix got(s.m, s.n);
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m);
    EXPECT_EQ(got, ref) << s.m << "x" << s.k << "x" << s.n;
  }
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmPacked, FusedEpilogueMatchesUnfusedAcrossShapes) {
  // The fused store applies bias (and activation) once per element after
  // its complete k-sum, in the unfused order — so fused results must equal
  // matmul + add_row_broadcast (+ activation) BIT FOR BIT on every shape,
  // whichever kernel path dispatch picks.
  using Epilogue = tensor::kernels::Epilogue;
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  Rng rng(24);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix bias = random_matrix(1, s.n, rng);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    const Matrix biased = tensor::add_row_broadcast(tensor::matmul(a, b), bias);

    Epilogue epi;
    epi.bias = bias.data().data();
    Matrix got(s.m, s.n);

    epi.kind = Epilogue::Kind::kBias;
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m, epi);
    EXPECT_EQ(got, biased) << "kBias " << s.m << "x" << s.k << "x" << s.n;

    epi.kind = Epilogue::Kind::kBiasRelu;
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m, epi);
    const Matrix relued =
        biased.map([](double v) { return cpwl::eval_reference(cpwl::FunctionKind::kRelu, v); });
    EXPECT_EQ(got, relued) << "kBiasRelu " << s.m << "x" << s.k << "x" << s.n;

    epi.kind = Epilogue::Kind::kBiasTable;
    epi.table = &table;
    epi.table_eval = [](const void* t, double x) {
      return static_cast<const cpwl::SegmentTable*>(t)->eval(x);
    };
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m, epi);
    const Matrix tabled = biased.map([&](double v) { return table.eval(v); });
    EXPECT_EQ(got, tabled) << "kBiasTable " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmPacked, OneSharedPackServesManyThreadsBitExactly) {
  // The pack-once contract under real concurrency: four threads row-slice
  // one GEMM against the SAME PackedB (each calling gemm_packed on its
  // slice), and the stitched result must equal the one-call result exactly
  // — no thread ever needs a private packed copy.
  Rng rng(25);
  const std::size_t m = 97, k = 129, n = 65;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  const auto packed = tensor::kernels::PackedB::pack(b.data().data(), k, n);

  Matrix whole(m, n);
  tensor::kernels::gemm_packed(a.data().data(), packed, whole.data().data(), m);

  tensor::kernels::ThreadPool pool(4);
  const std::size_t per = 28;  // ceil(97 / 4) rounded up to MR=4
  Matrix sliced(m, n);
  pool.run(4, [&](std::size_t part) {
    const std::size_t lo = std::min(m, part * per);
    const std::size_t hi = std::min(m, lo + per);
    if (lo < hi)
      tensor::kernels::gemm_packed(a.data().data() + lo * k, packed,
                                   sliced.data().data() + lo * n, hi - lo);
  });
  EXPECT_EQ(sliced, whole);
}

TEST(GemmPacked, ThreadedPathPacksEachPanelExactlyOnce) {
  // The old multi-thread gemm() re-packed B once PER THREAD; the pack-once
  // refactor packs each (kc, jc) panel exactly once per call — and the
  // pre-packed path packs nothing at all. The debug pack counter observes
  // every panel pack in the kernel layer.
  if (!tensor::kernels::pack_counter_enabled()) {
    GTEST_SKIP() << "pack counter compiled out (NDEBUG)";
  }
  const bool prev = tensor::kernels::deterministic();
  tensor::kernels::set_deterministic(false);  // reference path packs nothing
  Rng rng(26);
  // Tall m and >1 panel along each of k and n; big enough that the threaded
  // path engages whenever the pool has more than one lane.
  const std::size_t m = 512, k = 300, n = 600;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);

  tensor::kernels::reset_pack_panel_count();
  const auto packed = tensor::kernels::PackedB::pack(b.data().data(), k, n);
  const std::uint64_t panels = packed.kc_panels() * packed.nc_panels();
  EXPECT_EQ(packed.kc_panels(), 2u);
  EXPECT_EQ(packed.nc_panels(), 2u);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), panels);

  // Pre-packed GEMMs perform ZERO packs, at any thread count.
  tensor::kernels::reset_pack_panel_count();
  tensor::kernels::gemm_packed(a.data().data(), packed, c.data().data(), m);
  tensor::kernels::gemm_packed(a.data().data(), packed, c.data().data(), m);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), 0u);

  // The dispatcher (threaded or not) packs each panel exactly once per call
  // — never once per thread.
  tensor::kernels::reset_pack_panel_count();
  tensor::kernels::gemm(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), panels)
      << "threads=" << tensor::kernels::gemm_threads(m, k, n);
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmKernel, ResultsAreRowStableUnderStacking) {
  // The serving batcher stacks request rows into one tall GEMM and slices
  // the results back out; that is only exact if a row's result never depends
  // on how many other rows ride along. Dispatch is per-row-shape (k * n), and
  // the blocked kernel computes each row position-independently, so the
  // sliced rows must be bit-identical to a solo matmul — across sizes that
  // take the reference, blocked, and threaded paths.
  Rng rng(9);
  // Shapes chosen to cross dispatch boundaries: tiny (reference path),
  // mid-size (blocked single-thread), and a stack big enough that
  // gemm_threads exceeds one on multi-core hosts (256*128*128 MACs > 4x the
  // per-thread minimum) while the solo slice stays single-thread.
  for (auto [solo_rows, extra_rows, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{2, 3, 8, 8},
        {2, 32, 32, 64},
        {3, 253, 128, 128}}) {
    const Matrix solo = random_matrix(solo_rows, k, rng);
    const Matrix extra = random_matrix(extra_rows, k, rng);
    const Matrix b = random_matrix(k, n, rng);

    Matrix stacked(solo_rows + extra_rows, k, tensor::kUninitialized);
    std::copy(solo.data().begin(), solo.data().end(), stacked.data().begin());
    std::copy(extra.data().begin(), extra.data().end(),
              stacked.data().begin() + static_cast<std::ptrdiff_t>(solo.size()));

    const Matrix want = tensor::matmul(solo, b);
    const Matrix full = tensor::matmul(stacked, b);
    for (std::size_t i = 0; i < solo_rows; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(full(i, j), want(i, j)) << solo_rows << "+" << extra_rows << " k=" << k
                                          << " n=" << n << " at (" << i << "," << j << ")";

    // The packed path keeps the identical per-row (k * n) dispatch
    // criterion, so it must be row-stable the same way — including with a
    // fused epilogue (bias+relu are per-element, so they cannot couple rows).
    const Matrix bias = random_matrix(1, n, rng);
    tensor::kernels::Epilogue epi;
    epi.kind = tensor::kernels::Epilogue::Kind::kBiasRelu;
    epi.bias = bias.data().data();
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), k, n);
    Matrix solo_packed(solo_rows, n), full_packed(solo_rows + extra_rows, n);
    tensor::kernels::gemm_packed(solo.data().data(), packed, solo_packed.data().data(),
                                 solo_rows, epi);
    tensor::kernels::gemm_packed(stacked.data().data(), packed,
                                 full_packed.data().data(), solo_rows + extra_rows, epi);
    for (std::size_t i = 0; i < solo_rows; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(full_packed(i, j), solo_packed(i, j))
            << "packed " << solo_rows << "+" << extra_rows << " k=" << k << " n=" << n
            << " at (" << i << "," << j << ")";
  }
}

TEST(GemmKernel, ZeroInnerDimYieldsZeroMatrix) {
  const Matrix a(4, 0);
  const Matrix b(0, 6);
  const Matrix c = tensor::matmul(a, b);
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 6u);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.at_flat(i), 0.0);
}

TEST(ElementwiseKernels, MatchNaiveLoopsBitExactly) {
  Rng rng(11);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257}, std::size_t{70000}}) {
    const Matrix a = random_matrix(1, n, rng);
    const Matrix b = random_matrix(1, n, rng);
    std::vector<double> y(n), want(n);

    tensor::kernels::add(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) + b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::sub(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) - b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::hadamard(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) * b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::scale(a.data().data(), 1.75, y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = 1.75 * a.at_flat(i);
    EXPECT_EQ(y, want);

    std::fill(y.begin(), y.end(), 0.5);
    std::fill(want.begin(), want.end(), 0.5);
    tensor::kernels::axpy(-0.25, a.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] += -0.25 * a.at_flat(i);
    EXPECT_EQ(y, want);
  }
}

TEST(TransposeKernel, MatchesNaiveAcrossShapes) {
  Rng rng(12);
  for (const auto& [rows, cols] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, 1}, {1, 17}, {17, 1}, {31, 33}, {64, 64}, {100, 37}}) {
    const Matrix a = random_matrix(rows, cols, rng);
    const Matrix t = tensor::transpose(a);
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) EXPECT_EQ(t(j, i), a(i, j));
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  tensor::kernels::ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(0, hits.size(), 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  tensor::kernels::ThreadPool pool(3);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t part) {
                          if (part == 5) throw Error("boom");
                        }),
               Error);
  // Pool must stay usable after a failed job.
  std::atomic<int> ran{0};
  pool.run(4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ReservationShrinksEffectiveLanes) {
  // reserve(n) models n long-lived external compute threads (serve-pool
  // workers): fan-out must shrink so reserved + helpers never exceeds the
  // lane budget, and release() must restore it (clamped at zero).
  tensor::kernels::ThreadPool pool(4);
  EXPECT_EQ(pool.effective_threads(), 4u);
  pool.reserve(2);
  EXPECT_EQ(pool.reserved(), 2u);
  EXPECT_EQ(pool.effective_threads(), 2u);
  pool.reserve(10);  // over-reserve: floor at one inline lane
  EXPECT_EQ(pool.effective_threads(), 1u);
  pool.release(12);
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_EQ(pool.effective_threads(), 4u);
  pool.release(5);  // over-release clamps instead of wrapping
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_EQ(pool.effective_threads(), 4u);
}

TEST(ThreadPool, ReservationCapsParallelForFanOut) {
  tensor::kernels::ThreadPool pool(4);
  pool.reserve(3);  // one helper lane left
  std::mutex mutex;
  std::set<std::thread::id> threads_used;
  pool.parallel_for(0, 10000, 1, [&](std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    threads_used.insert(std::this_thread::get_id());
  });
  // With 3 of 4 lanes reserved the sweep must collapse to one chunk on the
  // calling thread (no helper fan-out).
  EXPECT_EQ(threads_used.size(), 1u);
  pool.release(3);
}

// ------------------------------------------------------------------- CPWL

TEST(CpwlBatch, EvalBatchMatchesScalarEvalBitExactly) {
  for (double g : {0.25, 0.125, 0.1}) {  // power-of-two fast index + divide path
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, cfg);
    Rng rng(13);
    std::vector<double> x(4096), y(4096);
    for (auto& v : x) v = rng.uniform(-12.0, 12.0);  // includes capped range
    table.eval_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i], table.eval(x[i])) << "g=" << g << " x=" << x[i];
    }
  }
}

TEST(CpwlBatch, EvalFixedBatchMatchesScalarBitExactly) {
  for (double g : {0.25, 0.1}) {
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kTanh, cfg);
    // Every raw INT16 value: the full input space of the hardware indexer.
    std::vector<fixed::Fix16> x, y;
    for (int raw = -32768; raw <= 32767; ++raw)
      x.push_back(fixed::Fix16::from_raw(static_cast<std::int16_t>(raw)));
    y.resize(x.size());
    table.eval_fixed_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i].raw(), table.eval_fixed(x[i]).raw()) << "g=" << g;
    }
  }
}

TEST(CpwlBatch, LookupFixedBatchMatchesScalarIndexingAndCapCounts) {
  // 0.25 exercises the shift indexer, 0.1 the divide fallback.
  for (double g : {0.25, 0.1}) {
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kExp, cfg);
    std::vector<fixed::Fix16> x;
    Rng rng(14);
    for (int i = 0; i < 2000; ++i)
      x.push_back(fixed::Fix16::from_double(rng.uniform(-50.0, 50.0)));
    std::vector<fixed::Fix16> seg(x.size()), k(x.size()), b(x.size());
    const auto caps = table.lookup_fixed_batch(x, seg, k, b);

    std::uint64_t low = 0, high = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const int want_seg = table.segment_index_raw(x[i].raw());
      EXPECT_EQ(static_cast<int>(seg[i].raw()), want_seg) << "g=" << g;
      EXPECT_EQ(k[i].raw(), table.k_fixed(want_seg).raw()) << "g=" << g;
      EXPECT_EQ(b[i].raw(), table.b_fixed(want_seg).raw()) << "g=" << g;
      const int uncapped =
          table.shift_indexable()
              ? (static_cast<int>(x[i].raw()) >> table.shift_amount())
              : table.raw_segment(static_cast<double>(x[i].raw()) /
                                  static_cast<double>(1 << table.frac_bits()));
      if (uncapped < table.min_segment()) ++low;
      if (uncapped > table.max_segment()) ++high;
    }
    EXPECT_EQ(caps.low, low) << "g=" << g;
    EXPECT_EQ(caps.high, high) << "g=" << g;
  }
}

TEST(CpwlBatch, ActivationTableModeMatchesScalarTableEval) {
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  nn::Activation act(cpwl::FunctionKind::kGelu);
  act.use_table(&table);
  Rng rng(15);
  const Matrix x = tensor::random_uniform(9, 13, rng, -8.0, 8.0);
  const Matrix y = act.forward(x);
  ASSERT_EQ(y.rows(), x.rows());
  ASSERT_EQ(y.cols(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(y.at_flat(i), table.eval(x.at_flat(i)));

  // nullptr restores the exact reference path.
  act.use_table(nullptr);
  const Matrix exact = act.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(exact.at_flat(i), cpwl::eval_reference(cpwl::FunctionKind::kGelu, x.at_flat(i)));
}

}  // namespace
}  // namespace onesa
