// Kernel-vs-reference equivalence: the blocked/threaded tensor kernels and
// the batched CPWL evaluators must reproduce the seed's scalar loops —
// bit-exactly where the contract says exact (deterministic mode, elementwise,
// transpose, INT16 batch eval), and within 1e-12 relative where the blocked
// GEMM reassociates the k-sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "cpwl/segment_table.hpp"
#include "nn/activations.hpp"
#include "tensor/kernels/elementwise.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/thread_pool.hpp"
#include "tensor/kernels/transpose.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using tensor::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  return tensor::random_uniform(rows, cols, rng, -2.0, 2.0);
}

/// max |a-b| scaled by max |b| (0-safe).
double relative_max_error(const Matrix& a, const Matrix& b) {
  double scale = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) scale = std::max(scale, std::abs(b.at_flat(i)));
  if (scale == 0.0) scale = 1.0;
  return tensor::max_abs_distance(a, b) / scale;
}

// Shapes chosen to hit every packing edge: empty, single row/col/inner,
// exact multiples of the micro-tile, one-off-from-block sizes, and shapes
// larger than one MC x KC x NC block.
struct Shape {
  std::size_t m, k, n;
};
const Shape kGemmShapes[] = {
    {0, 5, 3},  {5, 0, 3},   {5, 3, 0},   {1, 1, 1},   {1, 7, 9},    {7, 13, 1},
    {4, 8, 8},  {8, 8, 8},   {7, 13, 9},  {16, 16, 16}, {33, 17, 65}, {65, 64, 63},
    {70, 300, 40}, {128, 64, 96}, {3, 257, 5}};

TEST(GemmKernel, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(7);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    Matrix fast(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    tensor::kernels::gemm_blocked(a.data().data(), b.data().data(), fast.data().data(),
                                  s.m, s.k, s.n);
    EXPECT_LE(relative_max_error(fast, ref), 1e-12)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, DispatcherMatchesReferenceAcrossShapes) {
  Rng rng(8);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const Matrix fast = tensor::matmul(a, b);
    EXPECT_LE(relative_max_error(fast, ref), 1e-12)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, DeterministicModeIsBitExactWithReference) {
  const bool prev = tensor::kernels::deterministic();  // keep env-driven mode
  tensor::kernels::set_deterministic(true);
  Rng rng(9);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const Matrix fast = tensor::matmul(a, b);
    EXPECT_EQ(fast, ref) << s.m << "x" << s.k << "x" << s.n;  // bit-exact
  }
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmKernel, MultiThreadMatchesSingleThreadBitExactly) {
  // Row-sliced threading never reassociates any output element's sum, so the
  // threaded path must equal the single-thread blocked path exactly.
  Rng rng(10);
  const std::size_t m = 97, k = 129, n = 65;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix st(m, n);
  tensor::kernels::gemm_blocked(a.data().data(), b.data().data(), st.data().data(), m, k,
                                n);

  tensor::kernels::ThreadPool pool(4);
  const std::size_t per = 28;  // ceil(97 rows / 4 slices), rounded up to MR=4
  Matrix mt(m, n);
  pool.run(4, [&](std::size_t part) {
    const std::size_t lo = std::min(m, part * per);
    const std::size_t hi = std::min(m, lo + per);
    if (lo < hi)
      tensor::kernels::gemm_blocked(a.data().data() + lo * k, b.data().data(),
                                    mt.data().data() + lo * n, hi - lo, k, n);
  });
  EXPECT_EQ(mt, st);
}

TEST(GemmKernel, ResultsAreRowStableUnderStacking) {
  // The serving batcher stacks request rows into one tall GEMM and slices
  // the results back out; that is only exact if a row's result never depends
  // on how many other rows ride along. Dispatch is per-row-shape (k * n), and
  // the blocked kernel computes each row position-independently, so the
  // sliced rows must be bit-identical to a solo matmul — across sizes that
  // take the reference, blocked, and threaded paths.
  Rng rng(9);
  // Shapes chosen to cross dispatch boundaries: tiny (reference path),
  // mid-size (blocked single-thread), and a stack big enough that
  // gemm_threads exceeds one on multi-core hosts (256*128*128 MACs > 4x the
  // per-thread minimum) while the solo slice stays single-thread.
  for (auto [solo_rows, extra_rows, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{2, 3, 8, 8},
        {2, 32, 32, 64},
        {3, 253, 128, 128}}) {
    const Matrix solo = random_matrix(solo_rows, k, rng);
    const Matrix extra = random_matrix(extra_rows, k, rng);
    const Matrix b = random_matrix(k, n, rng);

    Matrix stacked(solo_rows + extra_rows, k, tensor::kUninitialized);
    std::copy(solo.data().begin(), solo.data().end(), stacked.data().begin());
    std::copy(extra.data().begin(), extra.data().end(),
              stacked.data().begin() + static_cast<std::ptrdiff_t>(solo.size()));

    const Matrix want = tensor::matmul(solo, b);
    const Matrix full = tensor::matmul(stacked, b);
    for (std::size_t i = 0; i < solo_rows; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(full(i, j), want(i, j)) << solo_rows << "+" << extra_rows << " k=" << k
                                          << " n=" << n << " at (" << i << "," << j << ")";
  }
}

TEST(GemmKernel, ZeroInnerDimYieldsZeroMatrix) {
  const Matrix a(4, 0);
  const Matrix b(0, 6);
  const Matrix c = tensor::matmul(a, b);
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 6u);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.at_flat(i), 0.0);
}

TEST(ElementwiseKernels, MatchNaiveLoopsBitExactly) {
  Rng rng(11);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257}, std::size_t{70000}}) {
    const Matrix a = random_matrix(1, n, rng);
    const Matrix b = random_matrix(1, n, rng);
    std::vector<double> y(n), want(n);

    tensor::kernels::add(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) + b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::sub(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) - b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::hadamard(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) * b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::scale(a.data().data(), 1.75, y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = 1.75 * a.at_flat(i);
    EXPECT_EQ(y, want);

    std::fill(y.begin(), y.end(), 0.5);
    std::fill(want.begin(), want.end(), 0.5);
    tensor::kernels::axpy(-0.25, a.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] += -0.25 * a.at_flat(i);
    EXPECT_EQ(y, want);
  }
}

TEST(TransposeKernel, MatchesNaiveAcrossShapes) {
  Rng rng(12);
  for (const auto& [rows, cols] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, 1}, {1, 17}, {17, 1}, {31, 33}, {64, 64}, {100, 37}}) {
    const Matrix a = random_matrix(rows, cols, rng);
    const Matrix t = tensor::transpose(a);
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) EXPECT_EQ(t(j, i), a(i, j));
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  tensor::kernels::ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(0, hits.size(), 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  tensor::kernels::ThreadPool pool(3);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t part) {
                          if (part == 5) throw Error("boom");
                        }),
               Error);
  // Pool must stay usable after a failed job.
  std::atomic<int> ran{0};
  pool.run(4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ReservationShrinksEffectiveLanes) {
  // reserve(n) models n long-lived external compute threads (serve-pool
  // workers): fan-out must shrink so reserved + helpers never exceeds the
  // lane budget, and release() must restore it (clamped at zero).
  tensor::kernels::ThreadPool pool(4);
  EXPECT_EQ(pool.effective_threads(), 4u);
  pool.reserve(2);
  EXPECT_EQ(pool.reserved(), 2u);
  EXPECT_EQ(pool.effective_threads(), 2u);
  pool.reserve(10);  // over-reserve: floor at one inline lane
  EXPECT_EQ(pool.effective_threads(), 1u);
  pool.release(12);
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_EQ(pool.effective_threads(), 4u);
  pool.release(5);  // over-release clamps instead of wrapping
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_EQ(pool.effective_threads(), 4u);
}

TEST(ThreadPool, ReservationCapsParallelForFanOut) {
  tensor::kernels::ThreadPool pool(4);
  pool.reserve(3);  // one helper lane left
  std::mutex mutex;
  std::set<std::thread::id> threads_used;
  pool.parallel_for(0, 10000, 1, [&](std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    threads_used.insert(std::this_thread::get_id());
  });
  // With 3 of 4 lanes reserved the sweep must collapse to one chunk on the
  // calling thread (no helper fan-out).
  EXPECT_EQ(threads_used.size(), 1u);
  pool.release(3);
}

// ------------------------------------------------------------------- CPWL

TEST(CpwlBatch, EvalBatchMatchesScalarEvalBitExactly) {
  for (double g : {0.25, 0.125, 0.1}) {  // power-of-two fast index + divide path
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, cfg);
    Rng rng(13);
    std::vector<double> x(4096), y(4096);
    for (auto& v : x) v = rng.uniform(-12.0, 12.0);  // includes capped range
    table.eval_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i], table.eval(x[i])) << "g=" << g << " x=" << x[i];
    }
  }
}

TEST(CpwlBatch, EvalFixedBatchMatchesScalarBitExactly) {
  for (double g : {0.25, 0.1}) {
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kTanh, cfg);
    // Every raw INT16 value: the full input space of the hardware indexer.
    std::vector<fixed::Fix16> x, y;
    for (int raw = -32768; raw <= 32767; ++raw)
      x.push_back(fixed::Fix16::from_raw(static_cast<std::int16_t>(raw)));
    y.resize(x.size());
    table.eval_fixed_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i].raw(), table.eval_fixed(x[i]).raw()) << "g=" << g;
    }
  }
}

TEST(CpwlBatch, LookupFixedBatchMatchesScalarIndexingAndCapCounts) {
  // 0.25 exercises the shift indexer, 0.1 the divide fallback.
  for (double g : {0.25, 0.1}) {
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kExp, cfg);
    std::vector<fixed::Fix16> x;
    Rng rng(14);
    for (int i = 0; i < 2000; ++i)
      x.push_back(fixed::Fix16::from_double(rng.uniform(-50.0, 50.0)));
    std::vector<fixed::Fix16> seg(x.size()), k(x.size()), b(x.size());
    const auto caps = table.lookup_fixed_batch(x, seg, k, b);

    std::uint64_t low = 0, high = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const int want_seg = table.segment_index_raw(x[i].raw());
      EXPECT_EQ(static_cast<int>(seg[i].raw()), want_seg) << "g=" << g;
      EXPECT_EQ(k[i].raw(), table.k_fixed(want_seg).raw()) << "g=" << g;
      EXPECT_EQ(b[i].raw(), table.b_fixed(want_seg).raw()) << "g=" << g;
      const int uncapped =
          table.shift_indexable()
              ? (static_cast<int>(x[i].raw()) >> table.shift_amount())
              : table.raw_segment(static_cast<double>(x[i].raw()) /
                                  static_cast<double>(1 << table.frac_bits()));
      if (uncapped < table.min_segment()) ++low;
      if (uncapped > table.max_segment()) ++high;
    }
    EXPECT_EQ(caps.low, low) << "g=" << g;
    EXPECT_EQ(caps.high, high) << "g=" << g;
  }
}

TEST(CpwlBatch, ActivationTableModeMatchesScalarTableEval) {
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  nn::Activation act(cpwl::FunctionKind::kGelu);
  act.use_table(&table);
  Rng rng(15);
  const Matrix x = tensor::random_uniform(9, 13, rng, -8.0, 8.0);
  const Matrix y = act.forward(x);
  ASSERT_EQ(y.rows(), x.rows());
  ASSERT_EQ(y.cols(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(y.at_flat(i), table.eval(x.at_flat(i)));

  // nullptr restores the exact reference path.
  act.use_table(nullptr);
  const Matrix exact = act.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(exact.at_flat(i), cpwl::eval_reference(cpwl::FunctionKind::kGelu, x.at_flat(i)));
}

}  // namespace
}  // namespace onesa
