// Kernel-vs-reference equivalence: the blocked/threaded tensor kernels and
// the batched CPWL evaluators must reproduce the seed's scalar loops —
// bit-exactly where the contract says exact (deterministic mode, elementwise,
// transpose, INT16 batch eval), and within 1e-12 relative where the blocked
// GEMM reassociates the k-sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "cpwl/segment_table.hpp"
#include "nn/activations.hpp"
#include "nn/quantized.hpp"
#include "tensor/kernels/elementwise.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/gemm_int16.hpp"
#include "tensor/kernels/thread_pool.hpp"
#include "tensor/kernels/transpose.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace onesa {
namespace {

using tensor::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  return tensor::random_uniform(rows, cols, rng, -2.0, 2.0);
}

/// max |a-b| scaled by max |b| (0-safe).
double relative_max_error(const Matrix& a, const Matrix& b) {
  double scale = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) scale = std::max(scale, std::abs(b.at_flat(i)));
  if (scale == 0.0) scale = 1.0;
  return tensor::max_abs_distance(a, b) / scale;
}

// Shapes chosen to hit every packing edge: empty, single row/col/inner,
// exact multiples of the micro-tile, one-off-from-block sizes, and shapes
// larger than one MC x KC x NC block.
struct Shape {
  std::size_t m, k, n;
};
const Shape kGemmShapes[] = {
    {0, 5, 3},  {5, 0, 3},   {5, 3, 0},   {1, 1, 1},   {1, 7, 9},    {7, 13, 1},
    {4, 8, 8},  {8, 8, 8},   {7, 13, 9},  {16, 16, 16}, {33, 17, 65}, {65, 64, 63},
    {70, 300, 40}, {128, 64, 96}, {3, 257, 5}};

TEST(GemmKernel, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(7);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    Matrix fast(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    tensor::kernels::gemm_blocked(a.data().data(), b.data().data(), fast.data().data(),
                                  s.m, s.k, s.n);
    EXPECT_LE(relative_max_error(fast, ref), 1e-12)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, DispatcherMatchesReferenceAcrossShapes) {
  Rng rng(8);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const Matrix fast = tensor::matmul(a, b);
    EXPECT_LE(relative_max_error(fast, ref), 1e-12)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, DeterministicModeIsBitExactWithReference) {
  const bool prev = tensor::kernels::deterministic();  // keep env-driven mode
  tensor::kernels::set_deterministic(true);
  Rng rng(9);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const Matrix fast = tensor::matmul(a, b);
    EXPECT_EQ(fast, ref) << s.m << "x" << s.k << "x" << s.n;  // bit-exact
  }
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmKernel, MultiThreadMatchesSingleThreadBitExactly) {
  // Row-sliced threading never reassociates any output element's sum, so the
  // threaded path must equal the single-thread blocked path exactly.
  Rng rng(10);
  const std::size_t m = 97, k = 129, n = 65;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix st(m, n);
  tensor::kernels::gemm_blocked(a.data().data(), b.data().data(), st.data().data(), m, k,
                                n);

  tensor::kernels::ThreadPool pool(4);
  const std::size_t per = 28;  // ceil(97 rows / 4 slices), rounded up to MR=4
  Matrix mt(m, n);
  pool.run(4, [&](std::size_t part) {
    const std::size_t lo = std::min(m, part * per);
    const std::size_t hi = std::min(m, lo + per);
    if (lo < hi)
      tensor::kernels::gemm_blocked(a.data().data() + lo * k, b.data().data(),
                                    mt.data().data() + lo * n, hi - lo, k, n);
  });
  EXPECT_EQ(mt, st);
}

// ------------------------------------------------------------ packed GEMM

TEST(PackedB, RoundTripsEveryElementAcrossShapes) {
  // Packing must be loss-free and the at() accessor must invert the sliver
  // layout exactly — the reference-order fallbacks depend on it.
  Rng rng(21);
  for (const Shape& s : kGemmShapes) {
    const Matrix b = random_matrix(s.k, s.n, rng);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    ASSERT_EQ(packed.k(), s.k);
    ASSERT_EQ(packed.n(), s.n);
    for (std::size_t kk = 0; kk < s.k; ++kk)
      for (std::size_t j = 0; j < s.n; ++j)
        ASSERT_EQ(packed.at(kk, j), b(kk, j)) << s.k << "x" << s.n;
  }
}

TEST(GemmPacked, MatchesDispatcherBitExactlyAcrossShapes) {
  // gemm_packed shares the dispatch criterion and loop orders with gemm(),
  // so on every shape — tiny/reference, blocked, threaded — the packed path
  // must reproduce the unpacked dispatcher bit for bit.
  Rng rng(22);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix want = tensor::matmul(a, b);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    Matrix got(s.m, s.n);
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m);
    EXPECT_EQ(got, want) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmPacked, DeterministicModeBitExactWithReference) {
  const bool prev = tensor::kernels::deterministic();
  tensor::kernels::set_deterministic(true);
  Rng rng(23);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix ref(s.m, s.n);
    tensor::kernels::gemm_reference(a.data().data(), b.data().data(), ref.data().data(),
                                    s.m, s.k, s.n);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    Matrix got(s.m, s.n);
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m);
    EXPECT_EQ(got, ref) << s.m << "x" << s.k << "x" << s.n;
  }
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmPacked, FusedEpilogueMatchesUnfusedAcrossShapes) {
  // The fused store applies bias (and activation) once per element after
  // its complete k-sum, in the unfused order — so fused results must equal
  // matmul + add_row_broadcast (+ activation) BIT FOR BIT on every shape,
  // whichever kernel path dispatch picks.
  using Epilogue = tensor::kernels::Epilogue;
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  Rng rng(24);
  for (const Shape& s : kGemmShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix bias = random_matrix(1, s.n, rng);
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), s.k, s.n);
    const Matrix biased = tensor::add_row_broadcast(tensor::matmul(a, b), bias);

    Epilogue epi;
    epi.bias = bias.data().data();
    Matrix got(s.m, s.n);

    epi.kind = Epilogue::Kind::kBias;
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m, epi);
    EXPECT_EQ(got, biased) << "kBias " << s.m << "x" << s.k << "x" << s.n;

    epi.kind = Epilogue::Kind::kBiasRelu;
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m, epi);
    const Matrix relued =
        biased.map([](double v) { return cpwl::eval_reference(cpwl::FunctionKind::kRelu, v); });
    EXPECT_EQ(got, relued) << "kBiasRelu " << s.m << "x" << s.k << "x" << s.n;

    epi.kind = Epilogue::Kind::kBiasTable;
    epi.table = &table;
    epi.table_eval = [](const void* t, double x) {
      return static_cast<const cpwl::SegmentTable*>(t)->eval(x);
    };
    tensor::kernels::gemm_packed(a.data().data(), packed, got.data().data(), s.m, epi);
    const Matrix tabled = biased.map([&](double v) { return table.eval(v); });
    EXPECT_EQ(got, tabled) << "kBiasTable " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmPacked, OneSharedPackServesManyThreadsBitExactly) {
  // The pack-once contract under real concurrency: four threads row-slice
  // one GEMM against the SAME PackedB (each calling gemm_packed on its
  // slice), and the stitched result must equal the one-call result exactly
  // — no thread ever needs a private packed copy.
  Rng rng(25);
  const std::size_t m = 97, k = 129, n = 65;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  const auto packed = tensor::kernels::PackedB::pack(b.data().data(), k, n);

  Matrix whole(m, n);
  tensor::kernels::gemm_packed(a.data().data(), packed, whole.data().data(), m);

  tensor::kernels::ThreadPool pool(4);
  const std::size_t per = 28;  // ceil(97 / 4) rounded up to MR=4
  Matrix sliced(m, n);
  pool.run(4, [&](std::size_t part) {
    const std::size_t lo = std::min(m, part * per);
    const std::size_t hi = std::min(m, lo + per);
    if (lo < hi)
      tensor::kernels::gemm_packed(a.data().data() + lo * k, packed,
                                   sliced.data().data() + lo * n, hi - lo);
  });
  EXPECT_EQ(sliced, whole);
}

TEST(GemmPacked, ThreadedPathPacksEachPanelExactlyOnce) {
  // The old multi-thread gemm() re-packed B once PER THREAD; the pack-once
  // refactor packs each (kc, jc) panel exactly once per call — and the
  // pre-packed path packs nothing at all. The debug pack counter observes
  // every panel pack in the kernel layer.
  if (!tensor::kernels::pack_counter_enabled()) {
    GTEST_SKIP() << "pack counter compiled out (NDEBUG)";
  }
  const bool prev = tensor::kernels::deterministic();
  tensor::kernels::set_deterministic(false);  // reference path packs nothing
  Rng rng(26);
  // Tall m and >1 panel along each of k and n; big enough that the threaded
  // path engages whenever the pool has more than one lane.
  const std::size_t m = 512, k = 300, n = 600;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);

  tensor::kernels::reset_pack_panel_count();
  const auto packed = tensor::kernels::PackedB::pack(b.data().data(), k, n);
  const std::uint64_t panels = packed.kc_panels() * packed.nc_panels();
  EXPECT_EQ(packed.kc_panels(), 2u);
  EXPECT_EQ(packed.nc_panels(), 2u);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), panels);

  // Pre-packed GEMMs perform ZERO packs, at any thread count.
  tensor::kernels::reset_pack_panel_count();
  tensor::kernels::gemm_packed(a.data().data(), packed, c.data().data(), m);
  tensor::kernels::gemm_packed(a.data().data(), packed, c.data().data(), m);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), 0u);

  // The dispatcher (threaded or not) packs each panel exactly once per call
  // — never once per thread.
  tensor::kernels::reset_pack_panel_count();
  tensor::kernels::gemm(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), panels)
      << "threads=" << tensor::kernels::gemm_threads(m, k, n);
  tensor::kernels::set_deterministic(prev);
}

TEST(GemmKernel, ResultsAreRowStableUnderStacking) {
  // The serving batcher stacks request rows into one tall GEMM and slices
  // the results back out; that is only exact if a row's result never depends
  // on how many other rows ride along. Dispatch is per-row-shape (k * n), and
  // the blocked kernel computes each row position-independently, so the
  // sliced rows must be bit-identical to a solo matmul — across sizes that
  // take the reference, blocked, and threaded paths.
  Rng rng(9);
  // Shapes chosen to cross dispatch boundaries: tiny (reference path),
  // mid-size (blocked single-thread), and a stack big enough that
  // gemm_threads exceeds one on multi-core hosts (256*128*128 MACs > 4x the
  // per-thread minimum) while the solo slice stays single-thread.
  for (auto [solo_rows, extra_rows, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{2, 3, 8, 8},
        {2, 32, 32, 64},
        {3, 253, 128, 128}}) {
    const Matrix solo = random_matrix(solo_rows, k, rng);
    const Matrix extra = random_matrix(extra_rows, k, rng);
    const Matrix b = random_matrix(k, n, rng);

    Matrix stacked(solo_rows + extra_rows, k, tensor::kUninitialized);
    std::copy(solo.data().begin(), solo.data().end(), stacked.data().begin());
    std::copy(extra.data().begin(), extra.data().end(),
              stacked.data().begin() + static_cast<std::ptrdiff_t>(solo.size()));

    const Matrix want = tensor::matmul(solo, b);
    const Matrix full = tensor::matmul(stacked, b);
    for (std::size_t i = 0; i < solo_rows; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(full(i, j), want(i, j)) << solo_rows << "+" << extra_rows << " k=" << k
                                          << " n=" << n << " at (" << i << "," << j << ")";

    // The packed path keeps the identical per-row (k * n) dispatch
    // criterion, so it must be row-stable the same way — including with a
    // fused epilogue (bias+relu are per-element, so they cannot couple rows).
    const Matrix bias = random_matrix(1, n, rng);
    tensor::kernels::Epilogue epi;
    epi.kind = tensor::kernels::Epilogue::Kind::kBiasRelu;
    epi.bias = bias.data().data();
    const auto packed = tensor::kernels::PackedB::pack(b.data().data(), k, n);
    Matrix solo_packed(solo_rows, n), full_packed(solo_rows + extra_rows, n);
    tensor::kernels::gemm_packed(solo.data().data(), packed, solo_packed.data().data(),
                                 solo_rows, epi);
    tensor::kernels::gemm_packed(stacked.data().data(), packed,
                                 full_packed.data().data(), solo_rows + extra_rows, epi);
    for (std::size_t i = 0; i < solo_rows; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(full_packed(i, j), solo_packed(i, j))
            << "packed " << solo_rows << "+" << extra_rows << " k=" << k << " n=" << n
            << " at (" << i << "," << j << ")";
  }
}

TEST(GemmKernel, ZeroInnerDimYieldsZeroMatrix) {
  const Matrix a(4, 0);
  const Matrix b(0, 6);
  const Matrix c = tensor::matmul(a, b);
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 6u);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.at_flat(i), 0.0);
}

TEST(ElementwiseKernels, MatchNaiveLoopsBitExactly) {
  Rng rng(11);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257}, std::size_t{70000}}) {
    const Matrix a = random_matrix(1, n, rng);
    const Matrix b = random_matrix(1, n, rng);
    std::vector<double> y(n), want(n);

    tensor::kernels::add(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) + b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::sub(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) - b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::hadamard(a.data().data(), b.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = a.at_flat(i) * b.at_flat(i);
    EXPECT_EQ(y, want);

    tensor::kernels::scale(a.data().data(), 1.75, y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] = 1.75 * a.at_flat(i);
    EXPECT_EQ(y, want);

    std::fill(y.begin(), y.end(), 0.5);
    std::fill(want.begin(), want.end(), 0.5);
    tensor::kernels::axpy(-0.25, a.data().data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) want[i] += -0.25 * a.at_flat(i);
    EXPECT_EQ(y, want);
  }
}

TEST(TransposeKernel, MatchesNaiveAcrossShapes) {
  Rng rng(12);
  for (const auto& [rows, cols] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, 1}, {1, 17}, {17, 1}, {31, 33}, {64, 64}, {100, 37}}) {
    const Matrix a = random_matrix(rows, cols, rng);
    const Matrix t = tensor::transpose(a);
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) EXPECT_EQ(t(j, i), a(i, j));
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  tensor::kernels::ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(0, hits.size(), 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  tensor::kernels::ThreadPool pool(3);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t part) {
                          if (part == 5) throw Error("boom");
                        }),
               Error);
  // Pool must stay usable after a failed job.
  std::atomic<int> ran{0};
  pool.run(4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ReservationShrinksEffectiveLanes) {
  // reserve(n) models n long-lived external compute threads (serve-pool
  // workers): fan-out must shrink so reserved + helpers never exceeds the
  // lane budget, and release() must restore it (clamped at zero).
  tensor::kernels::ThreadPool pool(4);
  EXPECT_EQ(pool.effective_threads(), 4u);
  pool.reserve(2);
  EXPECT_EQ(pool.reserved(), 2u);
  EXPECT_EQ(pool.effective_threads(), 2u);
  pool.reserve(10);  // over-reserve: floor at one inline lane
  EXPECT_EQ(pool.effective_threads(), 1u);
  pool.release(12);
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_EQ(pool.effective_threads(), 4u);
  pool.release(5);  // over-release clamps instead of wrapping
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_EQ(pool.effective_threads(), 4u);
}

TEST(ThreadPool, ReservationCapsParallelForFanOut) {
  tensor::kernels::ThreadPool pool(4);
  pool.reserve(3);  // one helper lane left
  std::mutex mutex;
  std::set<std::thread::id> threads_used;
  pool.parallel_for(0, 10000, 1, [&](std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    threads_used.insert(std::this_thread::get_id());
  });
  // With 3 of 4 lanes reserved the sweep must collapse to one chunk on the
  // calling thread (no helper fan-out).
  EXPECT_EQ(threads_used.size(), 1u);
  pool.release(3);
}

// ------------------------------------------------------------------- CPWL

TEST(CpwlBatch, EvalBatchMatchesScalarEvalBitExactly) {
  for (double g : {0.25, 0.125, 0.1}) {  // power-of-two fast index + divide path
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, cfg);
    Rng rng(13);
    std::vector<double> x(4096), y(4096);
    for (auto& v : x) v = rng.uniform(-12.0, 12.0);  // includes capped range
    table.eval_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i], table.eval(x[i])) << "g=" << g << " x=" << x[i];
    }
  }
}

TEST(CpwlBatch, EvalFixedBatchMatchesScalarBitExactly) {
  for (double g : {0.25, 0.1}) {
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kTanh, cfg);
    // Every raw INT16 value: the full input space of the hardware indexer.
    std::vector<fixed::Fix16> x, y;
    for (int raw = -32768; raw <= 32767; ++raw)
      x.push_back(fixed::Fix16::from_raw(static_cast<std::int16_t>(raw)));
    y.resize(x.size());
    table.eval_fixed_batch(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y[i].raw(), table.eval_fixed(x[i]).raw()) << "g=" << g;
    }
  }
}

TEST(CpwlBatch, LookupFixedBatchMatchesScalarIndexingAndCapCounts) {
  // 0.25 exercises the shift indexer, 0.1 the divide fallback.
  for (double g : {0.25, 0.1}) {
    cpwl::SegmentTableConfig cfg;
    cfg.granularity = g;
    const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kExp, cfg);
    std::vector<fixed::Fix16> x;
    Rng rng(14);
    for (int i = 0; i < 2000; ++i)
      x.push_back(fixed::Fix16::from_double(rng.uniform(-50.0, 50.0)));
    std::vector<fixed::Fix16> seg(x.size()), k(x.size()), b(x.size());
    const auto caps = table.lookup_fixed_batch(x, seg, k, b);

    std::uint64_t low = 0, high = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const int want_seg = table.segment_index_raw(x[i].raw());
      EXPECT_EQ(static_cast<int>(seg[i].raw()), want_seg) << "g=" << g;
      EXPECT_EQ(k[i].raw(), table.k_fixed(want_seg).raw()) << "g=" << g;
      EXPECT_EQ(b[i].raw(), table.b_fixed(want_seg).raw()) << "g=" << g;
      const int uncapped =
          table.shift_indexable()
              ? (static_cast<int>(x[i].raw()) >> table.shift_amount())
              : table.raw_segment(static_cast<double>(x[i].raw()) /
                                  static_cast<double>(1 << table.frac_bits()));
      if (uncapped < table.min_segment()) ++low;
      if (uncapped > table.max_segment()) ++high;
    }
    EXPECT_EQ(caps.low, low) << "g=" << g;
    EXPECT_EQ(caps.high, high) << "g=" << g;
  }
}

TEST(CpwlBatch, ActivationTableModeMatchesScalarTableEval) {
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  nn::Activation act(cpwl::FunctionKind::kGelu);
  act.use_table(&table);
  Rng rng(15);
  const Matrix x = tensor::random_uniform(9, 13, rng, -8.0, 8.0);
  const Matrix y = act.forward(x);
  ASSERT_EQ(y.rows(), x.rows());
  ASSERT_EQ(y.cols(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(y.at_flat(i), table.eval(x.at_flat(i)));

  // nullptr restores the exact reference path.
  act.use_table(nullptr);
  const Matrix exact = act.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(exact.at_flat(i), cpwl::eval_reference(cpwl::FunctionKind::kGelu, x.at_flat(i)));
}

// ------------------------------------------------------------- int16 GEMM
//
// The INT16 lane's contract (tensor/kernels/gemm_int16.hpp): every kernel —
// portable, AVX2, AVX-512BW — produces BIT-IDENTICAL wrap-mod-2^32
// accumulators; the requantizing epilogue matches the unfused
// bias -> Accumulator::result()-style shift -> activation composition
// exactly; saturation behaves like fixed::saturate_i16 at both rails.

std::vector<std::int16_t> random_i16(std::size_t count, Rng& rng, int lo = -2048,
                                     int hi = 2048) {
  std::vector<std::int16_t> v(count);
  for (auto& e : v)
    e = static_cast<std::int16_t>(std::lround(rng.uniform(lo, hi)));
  return v;
}

const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> kInt16Shapes = {
    {1, 1, 1},   {1, 5, 3},     {3, 257, 5},    {4, 64, 16},
    {7, 513, 300}, {8, 768, 96}, {13, 2, 130},  {32, 300, 521},
};

TEST(PackedBInt16, RoundTripsEveryElementAcrossShapes) {
  Rng rng(77);
  for (const auto& [m, k, n] : kInt16Shapes) {
    (void)m;
    const auto b = random_i16(k * n, rng, -32768, 32767);
    const auto packed = tensor::kernels::PackedBInt16::pack(b.data(), k, n);
    ASSERT_EQ(packed.k(), k);
    ASSERT_EQ(packed.n(), n);
    for (std::size_t kk = 0; kk < k; ++kk)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(packed.at(kk, j), b[kk * n + j]) << "k=" << kk << " j=" << j;
  }
}

TEST(GemmInt16, PackedAccumulatorsMatchReferenceAcrossShapes) {
  Rng rng(78);
  for (const auto& [m, k, n] : kInt16Shapes) {
    const auto a = random_i16(m * k, rng);
    const auto b = random_i16(k * n, rng);
    std::vector<std::int32_t> ref(m * n), acc(m * n);
    tensor::kernels::gemm_int16_reference(a.data(), b.data(), ref.data(), m, k, n);
    const auto packed = tensor::kernels::PackedBInt16::pack(b.data(), k, n);
    tensor::kernels::gemm_packed_int16_acc(a.data(), packed, acc.data(), m);
    ASSERT_EQ(acc, ref) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmInt16, PortableMatchesDispatchedKernelRawForRaw) {
  // The bit-exactness half of the contract: the scalar portable micro-kernel
  // replayed over the SAME packed buffer must reproduce the dispatched
  // vector path (pmaddwd pair products + vpaddd wrap) raw for raw, epilogue
  // included. Full-range operands so wrap actually occurs on the big shapes.
  Rng rng(79);
  for (const auto& [m, k, n] : kInt16Shapes) {
    const auto a = random_i16(m * k, rng, -32768, 32767);
    const auto b = random_i16(k * n, rng, -32768, 32767);
    const auto packed = tensor::kernels::PackedBInt16::pack(b.data(), k, n);
    tensor::kernels::EpilogueInt16 epi;
    epi.kind = tensor::kernels::EpilogueInt16::Kind::kNone;
    epi.shift = 9;
    std::vector<std::int16_t> dispatched(m * n), portable(m * n);
    tensor::kernels::gemm_packed_int16(a.data(), packed, dispatched.data(), m, epi);
    tensor::kernels::detail::gemm_packed_int16_portable(a.data(), packed,
                                                        portable.data(), m, epi);
    ASSERT_EQ(portable, dispatched)
        << "kernel=" << tensor::kernels::int16_kernel_name() << " m=" << m
        << " k=" << k << " n=" << n;
  }
}

TEST(GemmInt16, AccumulatorWrapsMod32AtTheBoundary) {
  // Worst-case pair product: (-32768)*(-32768) + (-32768)*(-32768) = 2^31,
  // which wraps to INT32_MIN in one pmaddwd — the documented (and tested)
  // wrap-not-saturate behaviour of the accumulation domain. Both the
  // reference and the packed path must agree on the wrapped bits.
  const std::size_t k = 2, n = 1;
  const std::int16_t lowest = std::numeric_limits<std::int16_t>::lowest();
  const std::vector<std::int16_t> a = {lowest, lowest};
  const std::vector<std::int16_t> b = {lowest, lowest};
  std::vector<std::int32_t> ref(1), acc(1);
  tensor::kernels::gemm_int16_reference(a.data(), b.data(), ref.data(), 1, k, n);
  EXPECT_EQ(ref[0], std::numeric_limits<std::int32_t>::min());
  const auto packed = tensor::kernels::PackedBInt16::pack(b.data(), k, n);
  tensor::kernels::gemm_packed_int16_acc(a.data(), packed, acc.data(), 1);
  EXPECT_EQ(acc[0], ref[0]);
}

TEST(GemmInt16, RequantizeSaturatesLikeSaturateI16) {
  using tensor::kernels::requantize_i32;
  // Pure saturation at shift 0: the int32 rails clamp to the int16 rails.
  EXPECT_EQ(requantize_i32(std::numeric_limits<std::int32_t>::max(), 0), 32767);
  EXPECT_EQ(requantize_i32(std::numeric_limits<std::int32_t>::min(), 0), -32768);
  EXPECT_EQ(requantize_i32(32767, 0), 32767);
  EXPECT_EQ(requantize_i32(32768, 0), 32767);
  EXPECT_EQ(requantize_i32(-32768, 0), -32768);
  EXPECT_EQ(requantize_i32(-32769, 0), -32768);
  // saturate_i16 round-trip at +/- max: already-saturated values are fixed
  // points.
  EXPECT_EQ(fixed::saturate_i16(fixed::saturate_i16(1 << 20)), 32767);
  EXPECT_EQ(fixed::saturate_i16(fixed::saturate_i16(-(1 << 20))), -32768);
  // Round-half-up at the shift boundary, matching Accumulator::result():
  // (v + 2^(s-1)) >> s in int64 (the rounding add cannot overflow int32
  // semantics because it happens at 64 bits).
  EXPECT_EQ(requantize_i32(511, 9), 1);   // 511 + 256 = 767 -> 1
  EXPECT_EQ(requantize_i32(255, 9), 0);   // 255 + 256 = 511 -> 0
  EXPECT_EQ(requantize_i32(256, 9), 1);   // exactly half rounds up
  EXPECT_EQ(requantize_i32(-256, 9), 0);  // -256 + 256 = 0
  EXPECT_EQ(requantize_i32(-257, 9), -1);
  // The rounding add on INT32_MAX would overflow int32; the int64 widening
  // makes it saturate cleanly instead of UB.
  EXPECT_EQ(requantize_i32(std::numeric_limits<std::int32_t>::max(), 1),
            32767);
  // Near-rail requantization: values that shift down to exactly the rails.
  EXPECT_EQ(requantize_i32(32767 << 9, 9), 32767);
  EXPECT_EQ(requantize_i32(-(32768 << 9), 9), -32768);
  EXPECT_EQ(requantize_i32((32767 << 9) + 300, 9), 32767);  // saturates, not wraps
  // Sweep agreement with Accumulator::result()'s write-back formula.
  Rng rng(80);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int32_t>(std::lround(rng.uniform(-6e6, 6e6)));
    const std::int64_t rounded = (std::int64_t{v} + 256) >> 9;
    EXPECT_EQ(requantize_i32(v, 9), fixed::saturate_i16(rounded));
  }
}

TEST(GemmInt16, FusedEpilogueMatchesUnfusedComposition) {
  // bias -> requantize -> activation fused in the micro-tile store must equal
  // the same steps applied to the raw accumulators afterwards — including
  // the CPWL table evaluated through its INT16 path.
  Rng rng(81);
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  for (const auto& [m, k, n] : kInt16Shapes) {
    const auto a = random_i16(m * k, rng, -512, 512);
    const auto b = random_i16(k * n, rng, -512, 512);
    const auto packed = tensor::kernels::PackedBInt16::pack(b.data(), k, n);
    std::vector<std::int32_t> bias(n);
    for (auto& e : bias) e = static_cast<std::int32_t>(std::lround(rng.uniform(-5e4, 5e4)));
    std::vector<std::int32_t> acc(m * n);
    tensor::kernels::gemm_packed_int16_acc(a.data(), packed, acc.data(), m);

    const int shift = 9;
    const auto unfused = [&](tensor::kernels::EpilogueInt16::Kind kind,
                             std::size_t i) {
      // The fused path adds the bias at int64 width BEFORE requantizing.
      std::int64_t v = std::int64_t{acc[i]} + bias[i % n];
      if (shift > 0) v = (v + (std::int64_t{1} << (shift - 1))) >> shift;
      std::int16_t q = fixed::saturate_i16(v);
      if (kind == tensor::kernels::EpilogueInt16::Kind::kBiasRelu && q < 0) q = 0;
      if (kind == tensor::kernels::EpilogueInt16::Kind::kBiasTable)
        q = table.eval_fixed(fixed::Fix16::from_raw(q)).raw();
      return q;
    };

    for (const auto kind : {tensor::kernels::EpilogueInt16::Kind::kBias,
                            tensor::kernels::EpilogueInt16::Kind::kBiasRelu,
                            tensor::kernels::EpilogueInt16::Kind::kBiasTable}) {
      tensor::kernels::EpilogueInt16 epi;
      epi.kind = kind;
      epi.bias = bias.data();
      epi.shift = shift;
      if (kind == tensor::kernels::EpilogueInt16::Kind::kBiasTable) {
        epi.table_eval = &nn::segment_table_batch_eval;
        epi.table = &table;
      }
      std::vector<std::int16_t> fused(m * n);
      tensor::kernels::gemm_packed_int16(a.data(), packed, fused.data(), m, epi);
      for (std::size_t i = 0; i < fused.size(); ++i)
        ASSERT_EQ(fused[i], unfused(kind, i))
            << "kind=" << static_cast<int>(kind) << " i=" << i << " m=" << m
            << " k=" << k << " n=" << n;
    }
  }
}

TEST(GemmInt16, ResultsAreRowStableUnderStacking) {
  // Integer accumulation cannot reassociate, so a row's outputs are
  // identical whether inferred alone or stacked into a batch — the int16
  // analogue of the double lane's row-stability guarantee, and the property
  // the serve tier's batcher relies on.
  Rng rng(82);
  const std::size_t m = 11, k = 300, n = 47;
  const auto a = random_i16(m * k, rng);
  const auto b = random_i16(k * n, rng);
  const auto packed = tensor::kernels::PackedBInt16::pack(b.data(), k, n);
  tensor::kernels::EpilogueInt16 epi;
  epi.kind = tensor::kernels::EpilogueInt16::Kind::kNone;
  epi.shift = 9;
  std::vector<std::int16_t> stacked(m * n);
  tensor::kernels::gemm_packed_int16(a.data(), packed, stacked.data(), m, epi);
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<std::int16_t> solo(n);
    tensor::kernels::gemm_packed_int16(a.data() + r * k, packed, solo.data(), 1, epi);
    for (std::size_t j = 0; j < n; ++j) ASSERT_EQ(solo[j], stacked[r * n + j]);
  }
}

TEST(GemmInt16, ZeroInnerDimSaturatesBiasOnly) {
  // k = 0: accumulators are all zero, so the output is exactly the
  // requantized bias — and an empty PackedBInt16 stays well-formed.
  const auto packed = tensor::kernels::PackedBInt16::pack(nullptr, 0, 3);
  EXPECT_TRUE(packed.empty());
  std::vector<std::int32_t> bias = {512, -1024, 1 << 28};
  tensor::kernels::EpilogueInt16 epi;
  epi.kind = tensor::kernels::EpilogueInt16::Kind::kBias;
  epi.bias = bias.data();
  epi.shift = 9;
  std::vector<std::int16_t> c(2 * 3, -1);
  tensor::kernels::gemm_packed_int16(nullptr, packed, c.data(), 2, epi);
  const std::vector<std::int16_t> expect = {1, -2, 32767, 1, -2, 32767};
  EXPECT_EQ(c, expect);
}

}  // namespace
}  // namespace onesa
