// Behavioural tests for the optimizers (the trainers behind Table III).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/linear.hpp"
#include "train/optimizer.hpp"

namespace onesa::train {
namespace {

/// A single scalar parameter wrapped for the optimizer API.
nn::Param scalar_param(double v) { return nn::Param(tensor::Matrix{{v}}); }

TEST(Sgd, PlainStepIsLrTimesGrad) {
  nn::Param p = scalar_param(1.0);
  Sgd opt({&p}, /*lr=*/0.1, /*momentum=*/0.0);
  p.grad(0, 0) = 2.0;
  opt.step();
  EXPECT_NEAR(p.value(0, 0), 1.0 - 0.1 * 2.0, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Param p = scalar_param(0.0);
  Sgd opt({&p}, /*lr=*/1.0, /*momentum=*/0.5);
  p.grad(0, 0) = 1.0;
  opt.step();  // v = 1, x = -1
  EXPECT_NEAR(p.value(0, 0), -1.0, 1e-12);
  opt.step();  // v = 0.5*1 + 1 = 1.5, x = -2.5
  EXPECT_NEAR(p.value(0, 0), -2.5, 1e-12);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  nn::Param p = scalar_param(10.0);
  Sgd opt({&p}, /*lr=*/0.1, /*momentum=*/0.0, /*weight_decay=*/0.1);
  p.grad(0, 0) = 0.0;
  opt.step();
  EXPECT_LT(p.value(0, 0), 10.0);
}

TEST(Sgd, ZeroGradClearsAccumulation) {
  nn::Param p = scalar_param(0.0);
  Sgd opt({&p}, 0.1);
  p.grad(0, 0) = 5.0;
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.0);
  opt.step();
  EXPECT_DOUBLE_EQ(p.value(0, 0), 0.0);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the first Adam step magnitude is ~lr regardless
  // of gradient scale.
  for (double g : {0.001, 1.0, 1000.0}) {
    nn::Param p = scalar_param(0.0);
    Adam opt({&p}, /*lr=*/0.01);
    p.grad(0, 0) = g;
    opt.step();
    EXPECT_NEAR(std::abs(p.value(0, 0)), 0.01, 1e-4) << "grad " << g;
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2.
  nn::Param p = scalar_param(0.0);
  Adam opt({&p}, /*lr=*/0.1);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    p.grad(0, 0) = 2.0 * (p.value(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0, 0.05);
}

TEST(Sgd, ConvergesOnQuadratic) {
  nn::Param p = scalar_param(0.0);
  Sgd opt({&p}, /*lr=*/0.05, /*momentum=*/0.9);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    p.grad(0, 0) = 2.0 * (p.value(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-3);
}

TEST(Optimizers, MultipleParamsUpdatedIndependently) {
  Rng rng(1);
  nn::Linear layer(3, 2, rng);
  Sgd opt(layer.params(), 0.1);
  const tensor::Matrix before_w = layer.weight().value;
  layer.weight().grad = tensor::Matrix(3, 2, 1.0);
  layer.bias().grad = tensor::Matrix(1, 2, 0.0);
  opt.step();
  for (std::size_t i = 0; i < before_w.size(); ++i) {
    EXPECT_NEAR(layer.weight().value.at_flat(i), before_w.at_flat(i) - 0.1, 1e-12);
  }
  EXPECT_DOUBLE_EQ(layer.bias().value(0, 0), 0.0);  // zero grad, zero decay
}

}  // namespace
}  // namespace onesa::train
