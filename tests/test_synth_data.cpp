// Tests for the synthetic dataset generators.
#include <gtest/gtest.h>

#include "data/synth.hpp"

namespace onesa::data {
namespace {

TEST(ImageTask, ShapesAndLabels) {
  Rng rng(1);
  ImageTaskSpec spec;
  const auto split = make_image_task(spec, rng);
  EXPECT_EQ(split.train.size(), spec.train_samples);
  EXPECT_EQ(split.test.size(), spec.test_samples);
  EXPECT_EQ(split.train.inputs.cols(), spec.channels * spec.height * spec.width);
  for (auto label : split.train.labels) EXPECT_LT(label, spec.classes);
}

TEST(ImageTask, DeterministicFromSeed) {
  ImageTaskSpec spec;
  Rng a(42);
  Rng b(42);
  const auto sa = make_image_task(spec, a);
  const auto sb = make_image_task(spec, b);
  EXPECT_EQ(sa.train.inputs, sb.train.inputs);
  EXPECT_EQ(sa.train.labels, sb.train.labels);
}

TEST(ImageTask, SeparationControlsSignal) {
  // Higher separation -> larger distance between class means.
  auto class_mean_distance = [](const Dataset& d) {
    // Mean of class 0 minus class 1, L2 over features.
    std::vector<double> m0(d.inputs.cols(), 0.0);
    std::vector<double> m1(d.inputs.cols(), 0.0);
    std::size_t n0 = 0;
    std::size_t n1 = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d.labels[i] == 0) {
        ++n0;
        for (std::size_t j = 0; j < d.inputs.cols(); ++j) m0[j] += d.inputs(i, j);
      } else if (d.labels[i] == 1) {
        ++n1;
        for (std::size_t j = 0; j < d.inputs.cols(); ++j) m1[j] += d.inputs(i, j);
      }
    }
    double dist = 0.0;
    for (std::size_t j = 0; j < m0.size(); ++j) {
      const double d0 = m0[j] / static_cast<double>(n0) - m1[j] / static_cast<double>(n1);
      dist += d0 * d0;
    }
    return dist;
  };
  Rng rng(7);
  ImageTaskSpec easy;
  easy.separation = 2.0;
  ImageTaskSpec hard;
  hard.separation = 0.3;
  const double easy_dist = class_mean_distance(make_image_task(easy, rng).train);
  const double hard_dist = class_mean_distance(make_image_task(hard, rng).train);
  EXPECT_GT(easy_dist, hard_dist);
}

TEST(SequenceTask, TokensInVocab) {
  Rng rng(2);
  SequenceTaskSpec spec;
  const auto split = make_sequence_task(spec, rng);
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    for (std::size_t p = 0; p < spec.seq_len; ++p) {
      const double token = split.train.inputs(i, p);
      EXPECT_GE(token, 0.0);
      EXPECT_LT(token, static_cast<double>(spec.vocab));
      EXPECT_DOUBLE_EQ(token, std::floor(token));  // integral ids
    }
  }
}

TEST(SequenceTask, MarkersCorrelateWithClass) {
  Rng rng(3);
  SequenceTaskSpec spec;
  spec.marker_rate = 0.9;
  const auto split = make_sequence_task(spec, rng);
  // With marker_rate 0.9, most tokens of a class-c sample are in that
  // class's marker range [2 + 3c, 2 + 3c + 2].
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t c = split.train.labels[i];
    std::size_t in_range = 0;
    for (std::size_t p = 0; p < spec.seq_len; ++p) {
      const auto tok = static_cast<std::size_t>(split.train.inputs(i, p));
      if (tok >= 2 + 3 * c && tok < 2 + 3 * (c + 1)) ++in_range;
    }
    EXPECT_GT(in_range, spec.seq_len / 2) << "sample " << i;
  }
}

TEST(SequenceTask, VocabTooSmallThrows) {
  Rng rng(4);
  SequenceTaskSpec spec;
  spec.vocab = 5;
  EXPECT_THROW(make_sequence_task(spec, rng), Error);
}

TEST(GraphTask, StructureValid) {
  Rng rng(5);
  GraphTaskSpec spec;
  const auto task = make_graph_task(spec, rng);
  EXPECT_EQ(task.labels.size(), spec.nodes);
  EXPECT_EQ(task.features.rows(), spec.nodes);
  EXPECT_EQ(task.train_mask.size(), spec.nodes);
  for (const auto& [u, v] : task.edges) {
    EXPECT_LT(u, spec.nodes);
    EXPECT_LT(v, spec.nodes);
    EXPECT_NE(u, v);
  }
  // Some nodes are train, some are test.
  std::size_t train_nodes = 0;
  for (bool m : task.train_mask) train_nodes += m ? 1 : 0;
  EXPECT_GT(train_nodes, 0u);
  EXPECT_LT(train_nodes, spec.nodes);
}

TEST(GraphTask, HomophilyPresent) {
  // Intra-class edges should outnumber inter-class edges given the SBM
  // probabilities.
  Rng rng(6);
  GraphTaskSpec spec;
  spec.intra_edge_prob = 0.3;
  spec.inter_edge_prob = 0.01;
  const auto task = make_graph_task(spec, rng);
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const auto& [u, v] : task.edges) {
    (task.labels[u] == task.labels[v] ? intra : inter) += 1;
  }
  EXPECT_GT(intra, inter);
}

}  // namespace
}  // namespace onesa::data
