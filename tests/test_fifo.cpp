// Tests for the FIFO primitive used by the L3 datapath.
#include <gtest/gtest.h>

#include <memory>

#include "sim/fifo.hpp"

namespace onesa::sim {
namespace {

TEST(Fifo, FifoOrdering) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.push(3));
  EXPECT_EQ(f.pop().value(), 1);
  EXPECT_EQ(f.pop().value(), 2);
  EXPECT_EQ(f.pop().value(), 3);
  EXPECT_FALSE(f.pop().has_value());
}

TEST(Fifo, BackPressureWhenFull) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.push(3));  // producer must stall
  EXPECT_EQ(f.size(), 2u);
  f.pop();
  EXPECT_TRUE(f.push(3));
}

TEST(Fifo, PeakOccupancyTracksHighWaterMark) {
  Fifo<int> f(8);
  f.push(1);
  f.push(2);
  f.push(3);
  f.pop();
  f.pop();
  f.push(4);
  EXPECT_EQ(f.peak_occupancy(), 3u);
  EXPECT_EQ(f.total_pushed(), 4u);
}

TEST(Fifo, ClearKeepsLifetimeStats) {
  Fifo<int> f(4);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.peak_occupancy(), 2u);
  EXPECT_EQ(f.total_pushed(), 2u);
}

TEST(Fifo, FrontOnEmptyThrows) {
  Fifo<int> f(1);
  EXPECT_THROW(f.front(), Error);
}

TEST(Fifo, ZeroCapacityRejected) {
  EXPECT_THROW(Fifo<int>(0), Error);
}

TEST(Fifo, MoveOnlyPayloads) {
  Fifo<std::unique_ptr<int>> f(2);
  EXPECT_TRUE(f.push(std::make_unique<int>(42)));
  auto v = f.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace onesa::sim
