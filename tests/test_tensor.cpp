// Unit tests for the tensor library (double and INT16 paths).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace onesa::tensor {
namespace {

TEST(Matrix, InitializerListConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ShapeError);
}

TEST(Matrix, MapAndApply) {
  Matrix m{{1.0, -2.0}};
  const Matrix doubled = m.map([](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(doubled(0, 1), -4.0);
  m.apply([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0);
}

TEST(Ops, MatmulSmallKnownResult) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), ShapeError);
}

TEST(Ops, MatmulIdentity) {
  Rng rng(7);
  const Matrix a = random_normal(5, 5, rng);
  Matrix eye(5, 5, 0.0);
  for (std::size_t i = 0; i < 5; ++i) eye(i, i) = 1.0;
  const Matrix c = matmul(a, eye);
  EXPECT_LT(max_abs_distance(a, c), 1e-12);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(11);
  const Matrix a = random_normal(4, 7, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Ops, HadamardCommutes) {
  Rng rng(13);
  const Matrix a = random_normal(3, 4, rng);
  const Matrix b = random_normal(3, 4, rng);
  EXPECT_LT(max_abs_distance(hadamard(a, b), hadamard(b, a)), 1e-15);
}

TEST(Ops, RowReductions) {
  const Matrix m{{1.0, 2.0, 3.0}, {-1.0, -5.0, 0.0}};
  EXPECT_DOUBLE_EQ(row_max(m)(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(row_max(m)(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(row_sum(m)(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(row_mean(m)(1, 0), -2.0);
}

TEST(Ops, RowVarMatchesDefinition) {
  const Matrix m{{1.0, 3.0, 5.0}};
  // mean 3, squared deviations 4, 0, 4 -> variance 8/3.
  EXPECT_NEAR(row_var(m)(0, 0), 8.0 / 3.0, 1e-12);
}

TEST(Ops, AddRowBroadcast) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix row{{10.0, 20.0}};
  const Matrix c = add_row_broadcast(a, row);
  EXPECT_DOUBLE_EQ(c(1, 0), 13.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
}

TEST(Ops, DistanceMetrics) {
  const Matrix a{{0.0, 3.0}};
  const Matrix b{{4.0, 3.0}};
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(max_abs_distance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(mean_abs(a), 1.5);
}

// ----------------------------------------------------------- fixed-point ops

TEST(FixedOps, QuantizeDequantizeRoundTrip) {
  Rng rng(17);
  const Matrix a = random_uniform(6, 6, rng, -4.0, 4.0);
  const Matrix round_tripped = to_double(to_fixed(a));
  EXPECT_LT(max_abs_distance(a, round_tripped), fixed::Fix16::resolution());
}

TEST(FixedOps, MatmulMatchesDoubleWithinQuantization) {
  Rng rng(19);
  const Matrix a = random_uniform(4, 6, rng, -1.0, 1.0);
  const Matrix b = random_uniform(6, 5, rng, -1.0, 1.0);
  const Matrix exact = matmul(to_double(to_fixed(a)), to_double(to_fixed(b)));
  const Matrix viaFixed = to_double(matmul(to_fixed(a), to_fixed(b)));
  // Wide accumulation: only the final rounding differs from exact.
  EXPECT_LT(max_abs_distance(exact, viaFixed), fixed::Fix16::resolution());
}

TEST(FixedOps, MhpAffineMatchesScalarFormula) {
  Rng rng(23);
  const FixMatrix x = to_fixed(random_uniform(3, 5, rng, -2.0, 2.0));
  const FixMatrix k = to_fixed(random_uniform(3, 5, rng, -2.0, 2.0));
  const FixMatrix b = to_fixed(random_uniform(3, 5, rng, -2.0, 2.0));
  const FixMatrix y = mhp_affine(x, k, b);
  for (std::size_t i = 0; i < y.size(); ++i) {
    fixed::Acc16 acc;
    acc.mac(x.at_flat(i), k.at_flat(i));
    acc.mac(fixed::Fix16::from_double(1.0), b.at_flat(i));
    EXPECT_EQ(y.at_flat(i).raw(), acc.result().raw()) << i;
  }
}

TEST(FixedOps, BroadcastHelpers) {
  const FixMatrix col = to_fixed(Matrix{{1.0}, {2.0}});
  const FixMatrix wide = broadcast_col(col, 3);
  EXPECT_EQ(wide.rows(), 2u);
  EXPECT_EQ(wide.cols(), 3u);
  EXPECT_DOUBLE_EQ(wide(1, 2).to_double(), 2.0);

  const FixMatrix row = to_fixed(Matrix{{3.0, 4.0}});
  const FixMatrix tall = broadcast_row(row, 3);
  EXPECT_EQ(tall.rows(), 3u);
  EXPECT_DOUBLE_EQ(tall(2, 1).to_double(), 4.0);

  EXPECT_THROW(broadcast_col(wide, 2), ShapeError);
  EXPECT_THROW(broadcast_row(col, 2), ShapeError);
}

// Property sweep: fixed GEMM associativity with identity-like scaling.
struct GemmShapeParam {
  std::size_t m, k, n;
};

class FixedGemmShapes : public ::testing::TestWithParam<GemmShapeParam> {};

TEST_P(FixedGemmShapes, MatchesDoubleReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  const Matrix a = random_uniform(m, k, rng, -1.0, 1.0);
  const Matrix b = random_uniform(k, n, rng, -1.0, 1.0);
  const Matrix exact = matmul(to_double(to_fixed(a)), to_double(to_fixed(b)));
  const Matrix viaFixed = to_double(matmul(to_fixed(a), to_fixed(b)));
  EXPECT_LT(max_abs_distance(exact, viaFixed), fixed::Fix16::resolution());
}

INSTANTIATE_TEST_SUITE_P(Shapes, FixedGemmShapes,
                         ::testing::Values(GemmShapeParam{1, 1, 1},
                                           GemmShapeParam{1, 8, 1},
                                           GemmShapeParam{3, 5, 7},
                                           GemmShapeParam{8, 8, 8},
                                           GemmShapeParam{16, 4, 2},
                                           GemmShapeParam{5, 32, 9}));

}  // namespace
}  // namespace onesa::tensor
