// Behavioural tests for the NN layers: forward semantics, accelerated
// (INT16 + CPWL) inference fidelity, and op census accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/graph.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"
#include "train/optimizer.hpp"
#include "tensor/kernels/pack.hpp"
#include "tensor/ops.hpp"

namespace onesa::nn {
namespace {

using tensor::Matrix;
using tensor::to_double;
using tensor::to_fixed;

OneSaConfig accel_config() {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.granularity = 0.125;
  cfg.mode = ExecutionMode::kAnalytic;
  return cfg;
}

TEST(LinearLayer, AccelMatchesReferenceWithinQuantization) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  const Matrix x = tensor::random_uniform(3, 6, rng, -1.0, 1.0);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.05);
}

TEST(ActivationLayer, GeluAccelTracksReference) {
  Rng rng(2);
  Activation layer(cpwl::FunctionKind::kGelu);
  const Matrix x = tensor::random_uniform(4, 8, rng, -4.0, 4.0);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  // CPWL error at g=0.125 plus quantization.
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.04);
}

TEST(ActivationLayer, ReluExactOnAccelerator) {
  Rng rng(3);
  Activation layer(cpwl::FunctionKind::kRelu);
  const Matrix x = to_double(to_fixed(tensor::random_uniform(4, 8, rng, -2.0, 2.0)));
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 2.5 * fixed::Fix16::resolution());
}

TEST(LayerNormLayer, NormalizesRows) {
  Rng rng(4);
  LayerNorm layer(8, 1e-5);
  const Matrix x = tensor::random_uniform(3, 8, rng, -2.0, 2.0);
  const Matrix y = layer.forward(x);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < 8; ++j) mean += y(i, j);
    EXPECT_NEAR(mean / 8.0, 0.0, 1e-9);
    double var = 0.0;
    for (std::size_t j = 0; j < 8; ++j) var += y(i, j) * y(i, j);
    EXPECT_NEAR(var / 8.0, 1.0, 1e-2);
  }
}

TEST(BatchNormLayer, TrainingNormalizesBatch) {
  Rng rng(5);
  BatchNorm2d layer(2, 2, 2);
  const Matrix x = tensor::random_uniform(16, 8, rng, 3.0, 5.0);  // offset data
  const Matrix y = layer.forward(x);
  // Per-channel batch mean ~0 after normalization.
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::size_t n = 0; n < 16; ++n)
      for (std::size_t p = 0; p < 4; ++p) mean += y(n, c * 4 + p);
    EXPECT_NEAR(mean / 64.0, 0.0, 1e-9);
  }
}

TEST(BatchNormLayer, InferenceUsesRunningStats) {
  Rng rng(6);
  BatchNorm2d layer(1, 2, 2);
  // Feed several training batches so running stats converge.
  for (int i = 0; i < 50; ++i) layer.forward(tensor::random_uniform(8, 4, rng, 1.0, 3.0));
  layer.set_training(false);
  // A constant input at the running mean maps near beta = 0.
  const Matrix x(1, 4, 2.0);
  const Matrix y = layer.forward(x);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(y(0, j), 0.0, 0.5) << j;
}

TEST(BatchNormLayer, AccelMatchesFoldedAffine) {
  Rng rng(7);
  BatchNorm2d layer(2, 2, 2);
  for (int i = 0; i < 20; ++i) layer.forward(tensor::random_uniform(8, 8, rng));
  layer.set_training(false);
  const Matrix x = tensor::random_uniform(4, 8, rng);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.05);
}

TEST(ConvLayer, AccelMatchesReference) {
  Rng rng(8);
  tensor::ConvShape shape{1, 4, 4, 3, 1, 1};
  Conv2d layer(shape, 2, rng);
  const Matrix x = tensor::random_uniform(2, 16, rng, -1.0, 1.0);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.05);
}

TEST(MaxPoolLayer, AccelBitExact) {
  Rng rng(9);
  MaxPool2d layer(2, 4, 4);
  const Matrix x = to_double(to_fixed(tensor::random_uniform(3, 32, rng)));
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 1e-12);
}

TEST(AttentionLayer, RowsOfAttentionAreDistributions) {
  Rng rng(10);
  MultiHeadSelfAttention layer(8, 2, rng);
  const Matrix x = tensor::random_uniform(5, 8, rng, -1.0, 1.0);
  const Matrix y = layer.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
}

TEST(AttentionLayer, AccelTracksReference) {
  Rng rng(11);
  MultiHeadSelfAttention layer(8, 2, rng);
  const Matrix x = tensor::random_uniform(4, 8, rng, -0.5, 0.5);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  // Attention chains several quantized ops; tolerance reflects INT16+CPWL.
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.15);
}

TEST(GraphConvLayer, PropagatesNeighbourInfo) {
  Rng rng(12);
  const auto adj = normalized_adjacency(4, {{0, 1}, {2, 3}});
  GraphConv layer(adj, 2, 2, rng);
  Matrix x{{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {0.0, 1.0}};
  const Matrix y = layer.forward(x);
  // Nodes 0/1 share a component, 2/3 another: outputs within a component
  // match, across components differ.
  EXPECT_NEAR(y(0, 0), y(1, 0), 1e-9);
  EXPECT_NEAR(y(2, 0), y(3, 0), 1e-9);
}

TEST(GraphConvLayer, AccelMatchesReference) {
  Rng rng(13);
  const auto adj = normalized_adjacency(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  GraphConv layer(adj, 3, 2, rng);
  const Matrix x = tensor::random_uniform(5, 3, rng, -1.0, 1.0);
  const Matrix ref = layer.forward(x);
  OneSaAccelerator accel(accel_config());
  const Matrix got = to_double(layer.forward_accel(accel, to_fixed(x)));
  EXPECT_LT(tensor::max_abs_distance(ref, got), 0.05);
}

TEST(NormalizedAdjacency, RowsOfIsolatedNodeKeepSelfLoop) {
  const auto adj = normalized_adjacency(3, {});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(adj(i, i), 1.0, 1e-12);
  }
}

TEST(EmbeddingLayer, LookupAndPosition) {
  Rng rng(14);
  Embedding layer(8, 4, rng, /*positional=*/false);
  Matrix ids{{2.0, 2.0}};
  const Matrix y = layer.forward(ids);
  // Same token at two positions -> identical rows without positional terms.
  for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(y(0, j), y(1, j));

  Embedding positional(8, 4, rng, /*positional=*/true);
  const Matrix yp = positional.forward(ids);
  bool any_differs = false;
  for (std::size_t j = 0; j < 4; ++j) {
    if (std::abs(yp(0, j) - yp(1, j)) > 1e-9) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(EmbeddingLayer, OutOfVocabThrows) {
  Rng rng(15);
  Embedding layer(4, 4, rng);
  EXPECT_THROW(layer.forward(Matrix{{9.0}}), Error);
}

TEST(OpCensus, CnnGemmDominates) {
  // Fig. 1a: GEMM is by far the largest share in a CNN.
  Rng rng(16);
  CnnSpec spec;
  auto model = make_cnn_classifier(spec, rng);
  model->forward(tensor::random_uniform(1, spec.in_channels * spec.height * spec.width,
                                        rng));  // populate feature widths
  OpCensus census;
  model->count_ops(census, 1);
  EXPECT_GT(census.gemm / census.total(), 0.5);
  EXPECT_GT(census.batchnorm, 0.0);
  EXPECT_GT(census.relu, 0.0);
  EXPECT_DOUBLE_EQ(census.gelu, 0.0);
  EXPECT_DOUBLE_EQ(census.layernorm, 0.0);
}

TEST(OpCensus, TransformerHasGeluAndLayernorm) {
  Rng rng(17);
  TransformerSpec spec;
  auto model = make_transformer_classifier(spec, rng);
  Matrix ids(1, spec.seq_len, 3.0);
  model->forward(ids);
  OpCensus census;
  model->count_ops(census, 1);
  EXPECT_GT(census.gemm / census.total(), 0.5);
  EXPECT_GT(census.gelu, 0.0);
  EXPECT_GT(census.layernorm, 0.0);
  EXPECT_GT(census.softmax, 0.0);
  EXPECT_DOUBLE_EQ(census.batchnorm, 0.0);
}

// ------------------------------------------------- const inference path
//
// Layer::infer is the thread-safe forward the serving tier runs against
// shared model weights; its contract is bit-identical outputs to forward()
// (eval mode for BatchNorm). Exercised across all three model families so
// every layer type's infer override is covered.

TEST(InferPath, CnnMatchesEvalForwardBitExactly) {
  Rng rng(31);
  CnnSpec spec;
  auto model = make_cnn_classifier(spec, rng);
  set_training_mode(*model, false);  // BatchNorm running stats, like infer
  const std::size_t features = spec.in_channels * spec.height * spec.width;
  const Matrix x = tensor::random_uniform(3, features, rng, -1.0, 1.0);

  const Matrix want = model->forward(x);
  const nn::Sequential& frozen = *model;  // infer is const — usable via const ref
  EXPECT_EQ(frozen.infer(x), want);
}

TEST(InferPath, TransformerMatchesForwardBitExactly) {
  Rng rng(32);
  TransformerSpec spec;
  auto model = make_transformer_classifier(spec, rng);
  Matrix ids(1, spec.seq_len);
  for (std::size_t p = 0; p < spec.seq_len; ++p)
    ids(0, p) = static_cast<double>((p * 7) % spec.vocab);

  const Matrix want = model->forward(ids);
  EXPECT_EQ(std::as_const(*model).infer(ids), want);
}

TEST(InferPath, GcnMatchesForwardBitExactly) {
  Rng rng(33);
  const std::size_t nodes = 12;
  const auto adj = normalized_adjacency(
      nodes, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {6, 7}, {8, 9}, {10, 11}});
  GcnSpec spec;
  auto model = make_gcn_classifier(adj, spec, rng);
  const Matrix x = tensor::random_uniform(nodes, spec.features, rng, -1.0, 1.0);

  const Matrix want = model->forward(x);
  EXPECT_EQ(std::as_const(*model).infer(x), want);
}

TEST(InferPath, PackedWeightCacheInvalidatedByOptimizerStep) {
  // infer() caches the packed weights; an optimizer step bumps the weight
  // Param's version, so the next infer must re-pack and see the new values
  // (still bit-identical to the unfused training forward on them).
  Rng rng(44);
  Linear lin(6, 5, rng);
  const Matrix x = tensor::random_uniform(3, 6, rng, -1.0, 1.0);

  const Matrix before = lin.infer(x);  // builds the packed cache
  EXPECT_EQ(before, lin.forward(x));

  // One SGD step with a non-zero gradient rewrites the weights.
  lin.forward(x);
  lin.backward(tensor::random_uniform(3, 5, rng, -1.0, 1.0));
  train::Sgd sgd(lin.params(), /*lr=*/0.1);
  sgd.step();

  const Matrix after = lin.infer(x);
  EXPECT_NE(after, before);             // stale cache would reproduce `before`
  EXPECT_EQ(after, lin.forward(x));     // fresh pack matches the raw weights

  // Direct value assignment bypasses the version bump; the documented
  // escape hatch is invalidate_packed().
  lin.weight().value = tensor::random_uniform(6, 5, rng, -1.0, 1.0);
  lin.invalidate_packed();
  EXPECT_EQ(lin.infer(x), lin.forward(x));
}

TEST(InferPath, SequentialFusesLinearActivationPairsBitExactly) {
  // Sequential::infer runs Linear+ReLU (and Linear+table-activation) pairs
  // through the fused GEMM epilogue; the per-layer training forward is the
  // unfused reference, and both must agree bit for bit.
  Rng rng(45);
  Sequential model;
  model.add(std::make_unique<Linear>(7, 11, rng));
  model.add(make_relu());
  model.add(std::make_unique<Linear>(11, 9, rng));
  model.add(make_gelu());  // exact gelu: NOT fusable, runs as its own layer
  model.add(std::make_unique<Linear>(9, 4, rng));

  const Matrix x = tensor::random_uniform(5, 7, rng, -2.0, 2.0);
  EXPECT_EQ(std::as_const(model).infer(x), model.forward(x));

  // Table mode makes the gelu fusable through the kBiasTable epilogue.
  const auto table = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  dynamic_cast<Activation&>(model.at(3)).use_table(&table);
  EXPECT_EQ(std::as_const(model).infer(x), model.forward(x));
}

TEST(InferPath, ConvAndAttentionServeFromPrepackedWeights) {
  // Conv2d's im2col GEMM and the four attention projections route through
  // cached PackedB like Linear: prepack() builds every pack, after which
  // infer() packs NOTHING — the registry pre-pack covers every matmul a
  // served model executes.
  if (!tensor::kernels::pack_counter_enabled()) {
    GTEST_SKIP() << "pack counter compiled out (NDEBUG build)";
  }
  Rng rng(46);
  tensor::ConvShape shape;
  shape.in_channels = 2;
  shape.in_height = 6;
  shape.in_width = 6;
  Conv2d conv(shape, 3, rng);
  MultiHeadSelfAttention attention(8, 2, rng);

  conv.prepack();
  attention.prepack();
  tensor::kernels::reset_pack_panel_count();
  const Matrix image = tensor::random_uniform(2, shape.in_channels * 36, rng, -1.0, 1.0);
  const Matrix seq = tensor::random_uniform(4, 8, rng, -1.0, 1.0);
  const Matrix conv_served = conv.infer(image);
  const Matrix attn_served = attention.infer(seq);
  EXPECT_EQ(tensor::kernels::pack_panel_count(), 0u);  // zero request-path packs

  // The packed path must not move a bit vs the raw-weight training forward.
  EXPECT_EQ(conv_served, conv.forward(image));
  EXPECT_EQ(attn_served, attention.forward(seq));

  // An optimizer step bumps the Param versions, so the next infer re-packs
  // and sees the new values (stale packs would reproduce the old logits).
  conv.backward(tensor::random_uniform(2, conv.out_features(), rng, -1.0, 1.0));
  attention.backward(tensor::random_uniform(4, 8, rng, -1.0, 1.0));
  std::vector<Param*> params = conv.params();
  const std::vector<Param*> attn_params = attention.params();
  params.insert(params.end(), attn_params.begin(), attn_params.end());
  train::Sgd sgd(params, /*lr=*/0.1);
  sgd.step();
  EXPECT_EQ(conv.infer(image), conv.forward(image));
  EXPECT_EQ(attention.infer(seq), attention.forward(seq));
}

TEST(InferPath, InferNeverTouchesTrainingState) {
  // Running infer between forward and backward must not disturb the cached
  // activations: gradients match a run without the interleaved infer.
  Rng rng(34);
  Linear a(5, 4, rng);
  Linear b(5, 4, rng);
  // Same weights for both instances.
  b.weight().value = a.weight().value;
  b.bias().value = a.bias().value;

  const Matrix x = tensor::random_uniform(3, 5, rng, -1.0, 1.0);
  const Matrix grad = tensor::random_uniform(3, 4, rng, -1.0, 1.0);

  a.forward(x);
  a.backward(grad);

  b.forward(x);
  b.infer(tensor::random_uniform(6, 5, rng, -1.0, 1.0));  // interleaved inference
  b.backward(grad);

  EXPECT_EQ(a.weight().grad, b.weight().grad);
  EXPECT_EQ(a.bias().grad, b.bias().grad);
}

}  // namespace
}  // namespace onesa::nn
