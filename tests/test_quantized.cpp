// The INT16 quantized serving lane, model layer up: QuantizedModel must
// track the double model within the CPWL-table-dominated error bound, stay
// bit-deterministic and row-stable (the batcher's contract), reject models
// it cannot run entirely in INT16 at BUILD time, and ride the registry's
// version-aware publication path (quantize-at-publish, route-at-infer).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cpwl/segment_table.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/quantized.hpp"
#include "nn/sequential.hpp"
#include "serve/registry.hpp"
#include "tensor/matrix.hpp"

namespace onesa {
namespace {

using tensor::Matrix;

/// Max |a - b| over all elements.
double max_abs_error(const Matrix& a, const Matrix& b) {
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    err = std::max(err, std::fabs(a.at_flat(i) - b.at_flat(i)));
  return err;
}

/// Linear -> GELU(table) -> Linear, the quantizable MLP shape. The table
/// must outlive the model (the serving tier keeps tables alive at fleet
/// scope; tests use a static).
const cpwl::SegmentTable& gelu_table() {
  static const cpwl::SegmentTable table =
      cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu);
  return table;
}

std::unique_ptr<nn::Sequential> make_gelu_mlp(std::size_t in, std::size_t hidden,
                                              std::size_t out, Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Linear>(in, hidden, rng));
  auto act = std::make_unique<nn::Activation>(cpwl::FunctionKind::kGelu);
  act->use_table(&gelu_table());
  model->add(std::move(act));
  model->add(std::make_unique<nn::Linear>(hidden, out, rng));
  return model;
}

std::unique_ptr<nn::Sequential> make_relu_mlp(std::size_t in, std::size_t hidden,
                                              std::size_t out, Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Linear>(in, hidden, rng));
  model->add(nn::make_relu());
  model->add(std::make_unique<nn::Linear>(hidden, out, rng));
  return model;
}

// ------------------------------------------------------------- model layer

TEST(QuantizedModel, TracksDoubleLaneWithinQuantizationBound) {
  // Q6.9 activations carry ~1e-3 resolution and the GELU table its own CPWL
  // approximation error; across two layers of this width the observed max
  // logit error sits near 2-4e-2 (same order as the table-3 accuracy-vs-
  // granularity ablation). Gate with slack so only a real regression trips.
  Rng rng(21);
  const auto model = make_gelu_mlp(32, 64, 8, rng);
  const nn::QuantizedModel q(*model);
  const Matrix x = tensor::random_uniform(16, 32, rng, -1.0, 1.0);
  const Matrix yd = std::as_const(*model).infer(x);
  const Matrix yq = q.infer(x);
  ASSERT_EQ(yq.rows(), yd.rows());
  ASSERT_EQ(yq.cols(), yd.cols());
  EXPECT_LT(max_abs_error(yd, yq), 0.08);
}

TEST(QuantizedModel, ReluFusionTracksDoubleLane) {
  Rng rng(22);
  const auto model = make_relu_mlp(24, 48, 6, rng);
  const nn::QuantizedModel q(*model);
  ASSERT_EQ(q.layer_count(), 2u);
  EXPECT_EQ(q.layer(0).kind, tensor::kernels::EpilogueInt16::Kind::kBiasRelu);
  EXPECT_EQ(q.layer(1).kind, tensor::kernels::EpilogueInt16::Kind::kBias);
  const Matrix x = tensor::random_uniform(9, 24, rng, -1.0, 1.0);
  EXPECT_LT(max_abs_error(std::as_const(*model).infer(x), q.infer(x)), 0.05);
}

TEST(QuantizedModel, DeterministicAndRowStable) {
  // Integer arithmetic end to end: repeated inference is bit-identical, and
  // a row's logits do not depend on which batch carried it — the property
  // that lets the batcher stack rows of different requests on the INT16
  // lane exactly as it does on the double lane.
  Rng rng(23);
  const auto model = make_gelu_mlp(16, 40, 5, rng);
  const nn::QuantizedModel q(*model);
  const Matrix x = tensor::random_uniform(7, 16, rng, -1.0, 1.0);
  const Matrix y1 = q.infer(x);
  const Matrix y2 = q.infer(x);
  EXPECT_EQ(y1, y2);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    Matrix row(1, x.cols(), tensor::kUninitialized);
    for (std::size_t j = 0; j < x.cols(); ++j) row(0, j) = x(r, j);
    const Matrix solo = q.infer(row);
    for (std::size_t j = 0; j < y1.cols(); ++j) ASSERT_EQ(solo(0, j), y1(r, j));
  }
}

TEST(QuantizedModel, RejectsUnsupportedLayersAtBuildTime) {
  Rng rng(24);
  {  // LayerNorm cannot run on the INT16 lane.
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>(8, 8, rng));
    model.add(std::make_unique<nn::LayerNorm>(8));
    EXPECT_THROW(nn::QuantizedModel{model}, Error);
  }
  {  // A curved activation without a CPWL table has no INT16 evaluation.
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>(8, 8, rng));
    model.add(nn::make_gelu());
    EXPECT_THROW(nn::QuantizedModel{model}, Error);
  }
  {  // A table built for a different Q-format is a contract violation.
    cpwl::SegmentTableConfig cfg;
    cfg.frac_bits = 8;
    const auto table8 = cpwl::SegmentTable::build(cpwl::FunctionKind::kGelu, cfg);
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>(8, 8, rng));
    auto act = std::make_unique<nn::Activation>(cpwl::FunctionKind::kGelu);
    act->use_table(&table8);
    model.add(std::move(act));
    EXPECT_THROW(nn::QuantizedModel{model}, Error);
  }
  {  // Empty model.
    nn::Sequential model;
    EXPECT_THROW(nn::QuantizedModel{model}, Error);
  }
}

// ---------------------------------------------------------- registry layer

TEST(RegistryPrecision, QuantizesAtPublicationAndRoutesInfer) {
  Rng rng(25);
  serve::ModelRegistry registry;
  serve::ModelOptions options;
  options.batchable = true;
  options.precision = serve::Precision::kInt16;
  const auto handle = registry.add("q", make_gelu_mlp(12, 24, 4, rng), options);

  ASSERT_NE(handle->quantized, nullptr);
  EXPECT_EQ(handle->precision, serve::Precision::kInt16);
  EXPECT_EQ(handle->options().precision, serve::Precision::kInt16);

  // Entry::infer is the quantized lane, bit-for-bit.
  const Matrix x = tensor::random_uniform(3, 12, rng, -1.0, 1.0);
  EXPECT_EQ(handle->infer(x), handle->quantized->infer(x));

  // A double-lane entry carries no quantized rep and serves the model path.
  const auto dbl = registry.add("d", make_gelu_mlp(12, 24, 4, rng));
  EXPECT_EQ(dbl->quantized, nullptr);
  EXPECT_EQ(dbl->options().precision, serve::Precision::kDouble);
  EXPECT_EQ(dbl->infer(x), dbl->model->infer(x));
}

TEST(RegistryPrecision, OptionPreservingSwapKeepsTheInt16Lane) {
  Rng rng(26);
  serve::ModelRegistry registry;
  serve::ModelOptions options;
  options.precision = serve::Precision::kInt16;
  registry.add("q", make_relu_mlp(6, 12, 3, rng), options);

  const auto v2 = registry.swap("q", make_relu_mlp(6, 12, 3, rng));
  EXPECT_EQ(v2->version, 2u);
  ASSERT_NE(v2->quantized, nullptr) << "swap dropped the quantized rep";
  EXPECT_EQ(v2->options().precision, serve::Precision::kInt16);

  // An options-replacing swap can demote back to the double lane.
  const auto v3 = registry.swap("q", make_relu_mlp(6, 12, 3, rng), {});
  EXPECT_EQ(v3->quantized, nullptr);
  EXPECT_EQ(v3->options().precision, serve::Precision::kDouble);
}

TEST(RegistryPrecision, UnsupportedModelFailsAtAddNotOnTheRequestPath) {
  Rng rng(27);
  serve::ModelRegistry registry;
  serve::ModelOptions options;
  options.precision = serve::Precision::kInt16;
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Linear>(8, 8, rng));
  model->add(std::make_unique<nn::LayerNorm>(8));
  EXPECT_THROW(registry.add("bad", std::move(model), options), Error);
  EXPECT_EQ(registry.find("bad"), nullptr);
}

}  // namespace
}  // namespace onesa
