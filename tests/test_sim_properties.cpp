// Property tests for the timing/simulator layer: pipelining, monotonicity,
// traffic accounting, and geometry edge cases.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/array.hpp"
#include "sim/timing.hpp"
#include "tensor/ops.hpp"

namespace onesa::sim {
namespace {

using tensor::to_fixed;

ArrayConfig config(std::size_t rows, std::size_t cols, std::size_t macs) {
  ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.macs_per_pe = macs;
  return cfg;
}

TEST(TimingProperties, TilePipeliningBeatsSerialTiles) {
  // The pipelined multi-tile GEMM must cost less than executing each tile's
  // fill+compute+drain serially.
  TimingModel model(config(8, 8, 16));
  const GemmShape shape{64, 128, 64};  // 8x8 = 64 tiles
  const auto pipelined = model.gemm_cycles(shape).total();

  std::uint64_t serial = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    serial += model.gemm_cycles({8, 128, 8}).total();
  }
  EXPECT_LT(pipelined, serial);
}

TEST(TimingProperties, GemmCyclesMonotoneInEveryDimension) {
  TimingModel model(config(8, 8, 16));
  const GemmShape base{32, 32, 32};
  const auto base_cycles = model.gemm_cycles(base).total();
  EXPECT_GE(model.gemm_cycles({64, 32, 32}).total(), base_cycles);
  EXPECT_GE(model.gemm_cycles({32, 64, 32}).total(), base_cycles);
  EXPECT_GE(model.gemm_cycles({32, 32, 64}).total(), base_cycles);
}

TEST(TimingProperties, MhpCyclesMonotoneInElements) {
  TimingModel model(config(8, 8, 16));
  std::uint64_t prev = 0;
  for (std::size_t elems : {16u, 64u, 256u, 1024u, 4096u}) {
    const auto c = model.mhp_cycles(elems).total();
    EXPECT_GE(c, prev) << elems;
    prev = c;
  }
}

TEST(TimingProperties, NonSquareArraysHandled) {
  // Rectangular geometry: diagonal = min(rows, cols); both orientations
  // must agree with the detailed simulator.
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{2, 8},
                            std::pair<std::size_t, std::size_t>{8, 2}}) {
    const ArrayConfig cfg = config(rows, cols, 4);
    SystolicArraySim sim(cfg);
    TimingModel model(cfg);
    Rng rng(rows * 10 + cols);
    const auto a = to_fixed(tensor::random_uniform(10, 12, rng));
    const auto b = to_fixed(tensor::random_uniform(12, 10, rng));
    EXPECT_EQ(sim.gemm(a, b).cycles.total(),
              model.gemm_cycles({10, 12, 10}).total());
    const auto x = to_fixed(tensor::random_uniform(6, 6, rng));
    EXPECT_EQ(sim.mhp(x, x, x).cycles.total(), model.mhp_cycles(36).total());
  }
}

TEST(TimingProperties, HighReuseGemmIsComputeBound) {
  // Large square-ish GEMM: every operand element is reused across many
  // tiles, so compute cycles dominate — where systolic arrays shine.
  TimingModel model(config(8, 8, 16));
  const auto cycles = model.gemm_cycles({128, 4096, 128});
  EXPECT_GT(static_cast<double>(cycles.compute_cycles) /
                static_cast<double>(cycles.total()),
            0.5);
}

TEST(TimingProperties, SkinnyGemmIsMemoryBound) {
  // 8 x 4096 x 8: each operand element is used only 8 times; streaming the
  // 128 KB of operands costs more than computing — the model must expose
  // that bandwidth wall rather than pretend peak throughput.
  TimingModel model(config(8, 8, 16));
  const auto cycles = model.gemm_cycles({8, 4096, 8});
  EXPECT_GT(cycles.memory_cycles, cycles.compute_cycles);
}

TEST(SimProperties, DramTrafficMatchesOperandSizes) {
  const ArrayConfig cfg = config(4, 4, 4);
  SystolicArraySim sim(cfg);
  Rng rng(9);
  const auto a = to_fixed(tensor::random_uniform(6, 10, rng));
  const auto b = to_fixed(tensor::random_uniform(10, 8, rng));
  sim.gemm(a, b);
  // One GEMM: operands read once, result written once.
  EXPECT_EQ(sim.dram().bytes_read(), (6 * 10 + 10 * 8) * sizeof(std::int16_t));
  EXPECT_EQ(sim.dram().bytes_written(), 6 * 8 * sizeof(std::int16_t));
}

TEST(SimProperties, MhpWritesResultTraffic) {
  const ArrayConfig cfg = config(4, 4, 4);
  SystolicArraySim sim(cfg);
  Rng rng(10);
  const auto x = to_fixed(tensor::random_uniform(5, 5, rng));
  sim.mhp(x, x, x);
  EXPECT_EQ(sim.dram().bytes_written(), 25 * sizeof(std::int16_t));
}

TEST(SimProperties, SingleElementEverything) {
  // 1x1 problems must work on every geometry (degenerate tiling).
  for (std::size_t dim : {2u, 4u, 8u}) {
    SystolicArraySim sim(config(dim, dim, 2));
    const auto one = to_fixed(tensor::Matrix{{1.5}});
    const auto two = to_fixed(tensor::Matrix{{2.0}});
    EXPECT_DOUBLE_EQ(sim.gemm(one, two).output(0, 0).to_double(), 3.0);
    EXPECT_DOUBLE_EQ(sim.mhp(one, two, two).output(0, 0).to_double(), 5.0);
  }
}

TEST(SimProperties, KSmallerThanLanes) {
  // K < macs_per_pe: a single partial flit must compute correctly.
  SystolicArraySim sim(config(4, 4, 16));
  Rng rng(11);
  const auto a = to_fixed(tensor::random_uniform(4, 3, rng));
  const auto b = to_fixed(tensor::random_uniform(3, 4, rng));
  EXPECT_EQ(sim.gemm(a, b).output, tensor::matmul(a, b));
}

TEST(TimingProperties, ClockDoesNotChangeCycles) {
  ArrayConfig fast = config(4, 4, 4);
  fast.clock_mhz = 800.0;
  ArrayConfig slow = config(4, 4, 4);
  slow.clock_mhz = 50.0;
  EXPECT_EQ(TimingModel(fast).gemm_cycles({16, 16, 16}).total(),
            TimingModel(slow).gemm_cycles({16, 16, 16}).total());
}

TEST(TimingProperties, GopsBoundedByPeak) {
  for (std::size_t dim : {2u, 4u, 8u, 16u}) {
    for (std::size_t macs : {2u, 8u, 32u}) {
      TimingModel model(config(dim, dim, macs));
      for (std::size_t n : {32u, 128u, 512u}) {
        EXPECT_LE(model.gemm_gops({n, n, n}), model.peak_gops() * (1.0 + 1e-9))
            << dim << "/" << macs << "/" << n;
      }
    }
  }
}

TEST(TimingProperties, GnfsBoundedByPeak) {
  for (std::size_t dim : {2u, 4u, 8u, 16u}) {
    TimingModel model(config(dim, dim, 16));
    for (std::size_t n : {32u, 128u, 512u}) {
      EXPECT_LE(model.nonlinear_gnfs(n * n), model.peak_gnfs() * (1.0 + 1e-9));
    }
  }
}

}  // namespace
}  // namespace onesa::sim
