// Tests of the network front door (net/): the frame decoder survives
// truncated, oversized, zero-length, and byte-fuzzed input (seeded and
// deterministic — the ASan CI job runs this suite to prove no malformed
// stream leaks or crashes); payload codecs are total; the poll(2) fallback
// behaves like epoll; and the server end-to-end honours its robustness
// contracts — malformed payloads answer without dropping the connection,
// framing violations reply-then-close, mid-flight disconnects orphan the
// reply exactly once, SIGTERM drains gracefully, the connection cap
// backpressures instead of churns, and slowloris/idle peers are evicted.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/poller.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "serve/fleet.hpp"
#include "tensor/ops.hpp"

namespace onesa::net {
namespace {

using tensor::Matrix;

// ------------------------------------------------------------ frame decoder

std::vector<unsigned char> ping_frame(std::uint64_t id) {
  std::vector<unsigned char> out;
  encode_frame(out, FrameType::kPing, id, nullptr, 0);
  return out;
}

TEST(FrameDecoder, RoundTripsFramesSplitAtEveryByteBoundary) {
  std::vector<unsigned char> stream;
  encode_frame(stream, FrameType::kPing, 1, nullptr, 0);
  const unsigned char payload[] = {0xde, 0xad, 0xbe, 0xef};
  encode_frame(stream, FrameType::kMetrics, 2, payload, sizeof(payload));
  encode_frame(stream, FrameType::kPong, 3, payload, 1);

  // Feed one byte at a time: every partial prefix must stay buffered, never
  // fail, and the exact same three frames must come out.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(decoder.feed(&stream[i], 1, frames)) << "byte " << i;
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kPing);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_TRUE(frames[0].payload.empty());
  EXPECT_EQ(frames[1].type, FrameType::kMetrics);
  EXPECT_EQ(frames[1].payload.size(), 4u);
  EXPECT_EQ(frames[2].request_id, 3u);
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.failed());
}

TEST(FrameDecoder, TruncatedFrameStaysBufferedNotFailed) {
  const std::vector<unsigned char> frame = ping_frame(42);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(frame.data(), frame.size() - 1, frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_GT(decoder.buffered(), 0u);  // mid-frame: the slowloris watchdog's cue
  ASSERT_TRUE(decoder.feed(frame.data() + frame.size() - 1, 1, frames));
  EXPECT_EQ(frames.size(), 1u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, FramingViolationsAreTerminal) {
  struct Case {
    const char* name;
    std::vector<unsigned char> bytes;
  };
  std::vector<Case> cases;
  {
    std::vector<unsigned char> bad = ping_frame(1);
    bad[0] = 'X';  // bad magic
    cases.push_back({"bad magic", bad});
  }
  {
    std::vector<unsigned char> bad = ping_frame(1);
    bad[5] = 0x01;  // nonzero flags
    cases.push_back({"nonzero flags", bad});
  }
  {
    std::vector<unsigned char> bad = ping_frame(1);
    bad[6] = 0x01;  // nonzero reserved
    cases.push_back({"nonzero reserved", bad});
  }
  {
    // Oversized claimed payload: must fail on the HEADER, before any
    // allocation of the claimed size.
    std::vector<unsigned char> bad = ping_frame(1);
    bad[16] = 0xff;
    bad[17] = 0xff;
    bad[18] = 0xff;
    bad[19] = 0x7f;
    cases.push_back({"oversized payload", bad});
  }

  for (const Case& c : cases) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    EXPECT_FALSE(decoder.feed(c.bytes.data(), c.bytes.size(), frames)) << c.name;
    EXPECT_TRUE(decoder.failed()) << c.name;
    EXPECT_FALSE(decoder.error().empty()) << c.name;
    // Terminal: a subsequent VALID frame is still rejected.
    const std::vector<unsigned char> good = ping_frame(2);
    EXPECT_FALSE(decoder.feed(good.data(), good.size(), frames)) << c.name;
    EXPECT_TRUE(frames.empty()) << c.name;
  }
}

TEST(FrameDecoder, ZeroLengthChunksAndEmptyPayloadsAreFine) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_TRUE(decoder.feed(nullptr, 0, frames));
  const std::vector<unsigned char> frame = ping_frame(7);
  EXPECT_TRUE(decoder.feed(frame.data(), frame.size(), frames));
  EXPECT_TRUE(decoder.feed(nullptr, 0, frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(FrameDecoder, ByteFuzzedStreamsNeverCrashDeterministic) {
  // Seeded fuzz in three flavours, fed in random-sized chunks. The decoder
  // must never crash/overflow (ASan job) and must either keep parsing or
  // fail terminally — this asserts invariants, not specific outcomes.
  Rng rng(0xF422);
  for (int round = 0; round < 200; ++round) {
    std::vector<unsigned char> stream;
    const int flavour = round % 3;
    if (flavour == 0) {
      // Pure garbage.
      const std::size_t len = static_cast<std::size_t>(rng.integer(0, 512));
      for (std::size_t i = 0; i < len; ++i)
        stream.push_back(static_cast<unsigned char>(rng.integer(0, 255)));
    } else if (flavour == 1) {
      // Valid frames with a few flipped bytes.
      for (int f = 0; f < 4; ++f) {
        std::vector<unsigned char> payload(
            static_cast<std::size_t>(rng.integer(0, 64)));
        for (auto& b : payload) b = static_cast<unsigned char>(rng.integer(0, 255));
        encode_frame(stream, FrameType::kPing,
                     static_cast<std::uint64_t>(rng.integer(0, 1 << 30)),
                     payload.data(), payload.size());
      }
      const int flips = static_cast<int>(rng.integer(1, 4));
      for (int i = 0; i < flips && !stream.empty(); ++i) {
        stream[static_cast<std::size_t>(
            rng.integer(0, static_cast<std::int64_t>(stream.size()) - 1))] ^=
            static_cast<unsigned char>(1 << rng.integer(0, 7));
      }
    } else {
      // Valid frames truncated mid-frame.
      encode_frame(stream, FrameType::kInfer, 9, nullptr, 0);
      std::vector<unsigned char> payload(
          static_cast<std::size_t>(rng.integer(1, 256)));
      encode_frame(stream, FrameType::kInfer, 10, payload.data(), payload.size());
      stream.resize(static_cast<std::size_t>(
          rng.integer(1, static_cast<std::int64_t>(stream.size()))));
    }

    FrameDecoder decoder;
    std::vector<Frame> frames;
    std::size_t off = 0;
    bool ok = true;
    while (off < stream.size() && ok) {
      const std::size_t chunk = std::min<std::size_t>(
          static_cast<std::size_t>(rng.integer(1, 64)), stream.size() - off);
      ok = decoder.feed(stream.data() + off, chunk, frames);
      off += chunk;
    }
    // Invariants: a failed decoder reports why and stays failed; a live one
    // never yields a frame larger than the bound.
    if (!ok) {
      EXPECT_TRUE(decoder.failed());
      EXPECT_FALSE(decoder.error().empty());
    }
    for (const Frame& f : frames) {
      EXPECT_LE(f.payload.size(), decoder.max_frame_bytes());
    }
  }
}

// ---------------------------------------------------------------- payloads

TEST(Protocol, InferPayloadRoundTripsAndValidatesTotally) {
  Rng rng(11);
  InferRequest req;
  req.model = "mlp";
  req.priority = serve::Priority::kInteractive;
  req.deadline_ms = 12.5;
  req.input = tensor::random_uniform(3, 5, rng);

  std::vector<unsigned char> frame_bytes;
  encode_infer(frame_bytes, 77, req);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(frame_bytes.data(), frame_bytes.size(), frames));
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kInfer);

  InferRequest got;
  std::string why;
  ASSERT_TRUE(
      decode_infer(frames[0].payload.data(), frames[0].payload.size(), got, why))
      << why;
  EXPECT_EQ(got.model, "mlp");
  EXPECT_EQ(got.priority, serve::Priority::kInteractive);
  EXPECT_DOUBLE_EQ(got.deadline_ms, 12.5);
  EXPECT_EQ(got.input, req.input);

  // Total validation: every truncation of the payload is rejected with a
  // reason, never a crash or an over-read.
  const std::vector<unsigned char>& payload = frames[0].payload;
  for (std::size_t len = 0; len < payload.size(); ++len) {
    InferRequest trunc;
    std::string reason;
    EXPECT_FALSE(decode_infer(payload.data(), len, trunc, reason)) << "len " << len;
    EXPECT_FALSE(reason.empty()) << "len " << len;
  }
  // Corrupt dimension claims are caught before any allocation.
  std::vector<unsigned char> huge = payload;
  huge[12] = 0xff;  // rows LE byte 0 (offset: 1+1+2+8 = 12)
  huge[13] = 0xff;
  huge[14] = 0xff;
  huge[15] = 0xff;
  InferRequest bad;
  std::string reason;
  EXPECT_FALSE(decode_infer(huge.data(), huge.size(), bad, reason));
}

TEST(Protocol, ErrorPayloadRoundTripsContext) {
  WireError err;
  err.queue_depth = 42;
  err.backlog_cost = 9000;
  err.shard = 3;
  err.worker = WireError::kNoIndex;
  err.model = "mlp";
  err.model_version = 7;
  err.message = "shed by admission control";

  std::vector<unsigned char> frame_bytes;
  encode_error(frame_bytes, FrameType::kErrOverload, 5, err);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(frame_bytes.data(), frame_bytes.size(), frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(is_error_type(frames[0].type));

  WireError got;
  std::string why;
  ASSERT_TRUE(
      decode_error(frames[0].payload.data(), frames[0].payload.size(), got, why))
      << why;
  EXPECT_EQ(got.queue_depth, 42u);
  EXPECT_EQ(got.backlog_cost, 9000u);
  EXPECT_EQ(got.shard, 3u);
  EXPECT_EQ(got.worker, WireError::kNoIndex);
  EXPECT_EQ(got.model, "mlp");
  EXPECT_EQ(got.model_version, 7u);
  EXPECT_EQ(got.message, "shed by admission control");
}

// ------------------------------------------------------------------ poller

TEST(Poller, PollFallbackReportsReadinessLikeEpoll) {
  for (const auto backend : {Poller::Backend::kDefault, Poller::Backend::kPoll}) {
    Poller poller(backend);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    poller.add(fds[0], /*want_read=*/true, /*want_write=*/false);

    std::vector<Poller::Event> events;
    EXPECT_EQ(poller.wait(events, 0), 0u);  // nothing ready yet

    const char byte = 1;
    ASSERT_EQ(::write(fds[1], &byte, 1), 1);
    ASSERT_EQ(poller.wait(events, 1000), 1u);
    EXPECT_EQ(events[0].fd, fds[0]);
    EXPECT_TRUE(events[0].readable);

    // Peer close surfaces as readable and/or hangup (read returns EOF).
    char sink;
    ASSERT_EQ(::read(fds[0], &sink, 1), 1);
    ::close(fds[1]);
    ASSERT_GE(poller.wait(events, 1000), 1u);
    EXPECT_TRUE(events[0].readable || events[0].hangup);

    poller.remove(fds[0]);
    ::close(fds[0]);
  }
}

// ---------------------------------------------------------- server fixture

OneSaConfig tiny_accel() {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = ExecutionMode::kAnalytic;
  return cfg;
}

std::unique_ptr<nn::Sequential> tiny_mlp(Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Linear>(4, 8, rng));
  model->add(nn::make_relu());
  model->add(std::make_unique<nn::Linear>(8, 3, rng));
  return model;
}

struct TestStack {
  serve::Fleet fleet;
  NetServer server;
  serve::ModelHandle handle;

  explicit TestStack(NetServerConfig net_cfg, serve::FleetConfig fleet_cfg,
                     serve::ModelOptions model_opts = {})
      : fleet(std::move(fleet_cfg)), server(fleet, std::move(net_cfg)) {
    Rng rng(4242);
    handle = fleet.register_model("mlp", tiny_mlp(rng), model_opts);
    server.start();
  }
};

serve::FleetConfig tiny_fleet(std::size_t shards = 1, std::size_t workers = 1) {
  serve::FleetConfig cfg;
  cfg.shards = shards;
  cfg.workers_per_shard = workers;
  cfg.accelerator = tiny_accel();
  return cfg;
}

InferRequest make_infer(Rng& rng, std::size_t rows = 2,
                        serve::Priority priority = serve::Priority::kNormal) {
  InferRequest req;
  req.model = "mlp";
  req.priority = priority;
  req.input = tensor::random_uniform(rows, 4, rng);
  return req;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ------------------------------------------------------------ server tests

TEST(NetServer, PingInferMetricsRoundTripOnBothBackends) {
  for (const bool force_poll : {false, true}) {
    NetServerConfig net_cfg;
    net_cfg.force_poll_backend = force_poll;
    TestStack stack(net_cfg, tiny_fleet(2, 2));
    Rng rng(19);

    BlockingClient client;
    client.connect("127.0.0.1", stack.server.port());

    auto pong = client.ping(101);
    ASSERT_TRUE(pong.has_value()) << "poll=" << force_poll;
    EXPECT_EQ(pong->type, FrameType::kPong);
    EXPECT_EQ(pong->request_id, 101u);

    // Infer round trip: the wire reply's logits are bit-exact against a
    // direct in-process infer on the same registered version.
    const InferRequest req = make_infer(rng, 3);
    auto reply = client.infer(102, req);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::kInferOk) << frame_type_name(reply->type);
    InferReply decoded;
    std::string why;
    ASSERT_TRUE(decode_infer_reply(reply->payload.data(), reply->payload.size(),
                                   decoded, why))
        << why;
    EXPECT_EQ(decoded.logits, stack.handle->infer(req.input));
    EXPECT_LT(decoded.shard, stack.fleet.shards());

    // Metrics over the binary dialect.
    auto metrics = client.metrics(103);
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->type, FrameType::kMetricsText);
    const std::string text(metrics->payload.begin(), metrics->payload.end());
    EXPECT_NE(text.find("net_frames_total"), std::string::npos);

    client.close();
    stack.server.stop();
    const NetServerCounters counters = stack.server.counters();
    EXPECT_EQ(counters.connections_accepted, 1u);
    EXPECT_EQ(counters.frames_received, 3u);
    EXPECT_EQ(counters.infers_accepted, 1u);
    EXPECT_EQ(counters.protocol_errors, 0u);
    EXPECT_EQ(counters.double_settles, 0u);
  }
}

TEST(NetServer, MalformedPayloadAnswersAndKeepsConnection) {
  TestStack stack({}, tiny_fleet());

  BlockingClient client;
  client.connect("127.0.0.1", stack.server.port());

  // Well-framed kInfer whose payload is garbage: the stream stays in sync,
  // so the server answers kErrProtocol and keeps the connection.
  const unsigned char junk[] = {0x01, 0x02, 0x03};
  std::vector<unsigned char> out;
  encode_frame(out, FrameType::kInfer, 201, junk, sizeof(junk));
  client.send_raw(out);
  auto reply = client.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kErrProtocol);
  EXPECT_EQ(reply->request_id, 201u);
  WireError err;
  std::string why;
  ASSERT_TRUE(decode_error(reply->payload.data(), reply->payload.size(), err, why));
  EXPECT_FALSE(err.message.empty());

  // The SAME connection still serves.
  auto pong = client.ping(202);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, FrameType::kPong);

  // A client sending a server-side frame type is a payload-level offence
  // too: answered, connection kept.
  out.clear();
  encode_frame(out, FrameType::kInferOk, 203, nullptr, 0);
  client.send_raw(out);
  reply = client.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kErrProtocol);
  pong = client.ping(204);
  ASSERT_TRUE(pong.has_value());

  stack.server.stop();
  EXPECT_EQ(stack.server.counters().protocol_errors, 2u);
  EXPECT_EQ(stack.server.counters().connections_accepted, 1u);
}

TEST(NetServer, FramingViolationRepliesThenCloses) {
  TestStack stack({}, tiny_fleet());

  BlockingClient client;
  client.connect("127.0.0.1", stack.server.port());
  const unsigned char garbage[] = "this is not a frame at all.............";
  client.send_raw(garbage, sizeof(garbage));

  auto reply = client.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kErrProtocol);
  WireError err;
  std::string why;
  ASSERT_TRUE(decode_error(reply->payload.data(), reply->payload.size(), err, why));
  EXPECT_FALSE(err.message.empty());
  // ...then EOF: a desynced stream cannot be resumed.
  EXPECT_FALSE(client.recv_frame().has_value());

  stack.server.stop();
  EXPECT_GE(stack.server.counters().protocol_errors, 1u);
}

TEST(NetServer, UnknownModelAnswersModelError) {
  TestStack stack({}, tiny_fleet());
  Rng rng(5);

  BlockingClient client;
  client.connect("127.0.0.1", stack.server.port());
  InferRequest req = make_infer(rng);
  req.model = "no-such-model";
  auto reply = client.infer(301, req);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kErrModel);
  WireError err;
  std::string why;
  ASSERT_TRUE(decode_error(reply->payload.data(), reply->payload.size(), err, why));
  EXPECT_EQ(err.model, "no-such-model");
  stack.server.stop();
}

TEST(NetServer, OverloadReplyCarriesQueueDepthContext) {
  // One slow shard (bulk batches wait out a 100 ms window) + a tiny
  // admission cap: a pipelined burst MUST shed, and every shed reply is a
  // structured kErrOverload, not a dropped connection.
  serve::FleetConfig fleet_cfg = tiny_fleet(1, 1);
  fleet_cfg.admission.max_pending_requests = 2;
  serve::ModelOptions opts;
  opts.batchable = true;
  opts.batch_window_ms = 100.0;
  TestStack stack({}, fleet_cfg, opts);
  Rng rng(23);

  BlockingClient client;
  client.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/10000.0);
  constexpr int kBurst = 48;
  for (int i = 0; i < kBurst; ++i) {
    client.send_infer(400 + static_cast<std::uint64_t>(i),
                      make_infer(rng, 1, serve::Priority::kBulk));
  }
  int ok = 0, overloaded = 0;
  WireError sample;
  for (int i = 0; i < kBurst; ++i) {
    auto reply = client.recv_frame();
    ASSERT_TRUE(reply.has_value()) << "reply " << i;
    if (reply->type == FrameType::kInferOk) {
      ++ok;
    } else {
      ASSERT_EQ(reply->type, FrameType::kErrOverload) << frame_type_name(reply->type);
      std::string why;
      ASSERT_TRUE(
          decode_error(reply->payload.data(), reply->payload.size(), sample, why));
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(overloaded, 0);
  // The "429 with depth": the shed carries the admission-time queue state.
  EXPECT_FALSE(sample.message.empty());
  EXPECT_LE(sample.queue_depth, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(sample.model, "mlp");

  stack.server.stop();
  const NetServerCounters counters = stack.server.counters();
  EXPECT_EQ(counters.overload_replies, static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(counters.double_settles, 0u);
}

TEST(NetServer, MidFlightDisconnectOrphansReplyExactlyOnce) {
  // Park a request in a 150 ms batching window, then vanish. The fleet
  // future must settle exactly once and the reply must be dropped cleanly.
  serve::ModelOptions opts;
  opts.batchable = true;
  opts.batch_window_ms = 150.0;
  TestStack stack({}, tiny_fleet(), opts);
  Rng rng(29);

  {
    BlockingClient client;
    client.connect("127.0.0.1", stack.server.port());
    client.send_infer(500, make_infer(rng, 1, serve::Priority::kBulk));
    ASSERT_TRUE(wait_until([&] { return stack.server.inflight() == 1; }));
  }  // destructor closes the socket with the request still in flight

  ASSERT_TRUE(wait_until([&] {
    return stack.server.counters().orphaned_replies >= 1;
  })) << "orphaned=" << stack.server.counters().orphaned_replies;
  EXPECT_EQ(stack.server.inflight(), 0u);
  stack.server.stop();
  const NetServerCounters counters = stack.server.counters();
  EXPECT_EQ(counters.orphaned_replies, 1u);
  EXPECT_EQ(counters.replies_sent, 0u);
  EXPECT_EQ(counters.double_settles, 0u);
}

TEST(NetServer, GracefulDrainFinishesInFlightAndRejectsNew) {
  serve::ModelOptions opts;
  opts.batchable = true;
  opts.batch_window_ms = 200.0;
  TestStack stack({}, tiny_fleet(), opts);
  Rng rng(31);

  BlockingClient parked;
  parked.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/10000.0);
  BlockingClient late;
  late.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/10000.0);

  const InferRequest req = make_infer(rng, 1, serve::Priority::kBulk);
  parked.send_infer(600, req);
  ASSERT_TRUE(wait_until([&] { return stack.server.inflight() == 1; }));

  stack.server.initiate_drain();
  // A new infer on an ALREADY-OPEN connection during the drain is answered
  // kErrDraining — not silently dropped, not accepted.
  late.send_infer(601, make_infer(rng));
  auto rejected = late.recv_frame();
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->type, FrameType::kErrDraining);

  // The parked request still completes and its reply is flushed before the
  // drain finishes.
  auto reply = parked.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kInferOk);

  ASSERT_TRUE(stack.server.wait_drained(10000.0));
  EXPECT_FALSE(stack.server.running());
  EXPECT_GT(stack.server.drain_ms(), 0.0);
  const NetServerCounters counters = stack.server.counters();
  EXPECT_EQ(counters.draining_rejects, 1u);
  EXPECT_EQ(counters.orphaned_replies, 0u);
  EXPECT_EQ(counters.double_settles, 0u);
  stack.server.stop();
}

TEST(NetServer, SigtermTriggersGracefulDrain) {
  // Process-directed SIGTERM (what an orchestrator sends) lands on the
  // sigtimedwait watcher — every other thread keeps it blocked.
  NetServer::block_drain_signals();
  TestStack stack({}, tiny_fleet());
  stack.server.install_signal_drain();

  BlockingClient client;
  client.connect("127.0.0.1", stack.server.port());
  ASSERT_TRUE(client.ping(700).has_value());

  ASSERT_EQ(kill(getpid(), SIGTERM), 0);
  ASSERT_TRUE(stack.server.wait_drained(10000.0));
  EXPECT_FALSE(stack.server.running());
  stack.server.stop();
}

TEST(NetServer, ConnectionCapBackpressuresInsteadOfChurning) {
  NetServerConfig net_cfg;
  net_cfg.max_connections = 2;
  TestStack stack(net_cfg, tiny_fleet());

  BlockingClient a, b;
  a.connect("127.0.0.1", stack.server.port());
  b.connect("127.0.0.1", stack.server.port());
  ASSERT_TRUE(a.ping(801).has_value());
  ASSERT_TRUE(b.ping(802).has_value());

  // Third connection: connect() succeeds (kernel backlog) but the server
  // does not accept it — a short-timeout ping gets no reply...
  BlockingClient c;
  c.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/300.0);
  std::vector<unsigned char> ping_bytes;
  encode_frame(ping_bytes, FrameType::kPing, 803, nullptr, 0);
  c.send_raw(ping_bytes);
  EXPECT_FALSE(c.recv_frame().has_value());

  // ...until a slot frees, at which point the queued connection is accepted
  // and its already-sent bytes are served. Nothing was dropped.
  a.close();
  auto pong = c.recv_frame();
  if (!pong.has_value()) pong = c.recv_frame();  // one extra timeout of slack
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, FrameType::kPong);
  EXPECT_EQ(pong->request_id, 803u);

  stack.server.stop();
  const NetServerCounters counters = stack.server.counters();
  EXPECT_GE(counters.accept_pauses, 1u);
  EXPECT_EQ(counters.connections_accepted, 3u);
}

TEST(NetServer, SlowlorisAndIdleClientsAreEvicted) {
  NetServerConfig net_cfg;
  net_cfg.frame_timeout_ms = 100.0;
  net_cfg.idle_timeout_ms = 400.0;
  TestStack stack(net_cfg, tiny_fleet());

  // Slowloris: hold a partial frame open past frame_timeout_ms.
  BlockingClient slow;
  slow.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/3000.0);
  const std::vector<unsigned char> frame = ping_frame(901);
  slow.send_raw(frame.data(), 8);  // header fragment, never completed
  EXPECT_FALSE(slow.recv_frame().has_value());  // EOF: evicted
  ASSERT_TRUE(wait_until(
      [&] { return stack.server.counters().slow_client_evictions >= 1; }));

  // Idle: a connection with no traffic and nothing in flight closes after
  // idle_timeout_ms.
  BlockingClient idle;
  idle.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/3000.0);
  ASSERT_TRUE(idle.ping(902).has_value());
  EXPECT_FALSE(idle.recv_frame().has_value());  // EOF after the idle timeout
  ASSERT_TRUE(
      wait_until([&] { return stack.server.counters().idle_evictions >= 1; }));

  stack.server.stop();
}

TEST(NetServer, HttpGetMetricsOnTheSamePort) {
  TestStack stack({}, tiny_fleet());

  // Prime one counter so the scrape has content.
  BlockingClient binary;
  binary.connect("127.0.0.1", stack.server.port());
  ASSERT_TRUE(binary.ping(1001).has_value());

  BlockingClient http;
  http.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/3000.0);
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  http.send_raw(reinterpret_cast<const unsigned char*>(get.data()), get.size());
  const std::string response = http.read_until_eof();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("net_connections_accepted_total"), std::string::npos);

  BlockingClient bad;
  bad.connect("127.0.0.1", stack.server.port(), /*recv_timeout_ms=*/3000.0);
  const std::string nope = "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n";
  bad.send_raw(reinterpret_cast<const unsigned char*>(nope.data()), nope.size());
  EXPECT_NE(bad.read_until_eof().find("404"), std::string::npos);

  stack.server.stop();
}

TEST(NetServer, StopIsIdempotentAndRestartUnsupportedCleanly) {
  TestStack stack({}, tiny_fleet());
  BlockingClient client;
  client.connect("127.0.0.1", stack.server.port());
  ASSERT_TRUE(client.ping(1101).has_value());
  stack.server.stop();
  EXPECT_NO_THROW(stack.server.stop());
  EXPECT_FALSE(stack.server.running());
  // The fleet was shut down by the drain contract; its shutdown is
  // idempotent too.
  EXPECT_NO_THROW(stack.fleet.shutdown());
}

}  // namespace
}  // namespace onesa::net
