// Unit tests for the INT16 Q6.9 fixed-point arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fixed/fixed16.hpp"

namespace onesa::fixed {
namespace {

TEST(Fixed16, RoundTripExactValues) {
  // Multiples of the resolution are represented exactly.
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.5, 2.25, -3.125, 63.0, -64.0}) {
    EXPECT_DOUBLE_EQ(Fix16::from_double(v).to_double(), v) << v;
  }
}

TEST(Fixed16, ResolutionIsQ69) {
  EXPECT_DOUBLE_EQ(Fix16::resolution(), 1.0 / 512.0);
  EXPECT_EQ(Fix16::kOne, 512);
}

TEST(Fixed16, QuantizationErrorBounded) {
  // Round-to-nearest: error <= half ulp.
  for (double v = -10.0; v < 10.0; v += 0.0137) {
    const double q = Fix16::from_double(v).to_double();
    EXPECT_LE(std::abs(q - v), Fix16::resolution() / 2.0 + 1e-12) << v;
  }
}

TEST(Fixed16, SaturatesAtRangeEdges) {
  EXPECT_EQ(Fix16::from_double(1000.0).raw(), std::numeric_limits<std::int16_t>::max());
  EXPECT_EQ(Fix16::from_double(-1000.0).raw(), std::numeric_limits<std::int16_t>::min());
  EXPECT_NEAR(Fix16::max().to_double(), 64.0, 0.01);
  EXPECT_NEAR(Fix16::min().to_double(), -64.0, 0.01);
}

TEST(Fixed16, AdditionSaturatesInsteadOfWrapping) {
  const auto big = Fix16::from_double(60.0);
  const auto sum = big + big;
  EXPECT_EQ(sum.raw(), std::numeric_limits<std::int16_t>::max());
  const auto neg = Fix16::from_double(-60.0);
  EXPECT_EQ((neg + neg).raw(), std::numeric_limits<std::int16_t>::min());
}

TEST(Fixed16, MultiplicationMatchesDouble) {
  for (double a = -5.0; a < 5.0; a += 0.613) {
    for (double b = -5.0; b < 5.0; b += 0.417) {
      const auto fa = Fix16::from_double(a);
      const auto fb = Fix16::from_double(b);
      const double expected = fa.to_double() * fb.to_double();
      EXPECT_NEAR((fa * fb).to_double(), expected, Fix16::resolution()) << a << "*" << b;
    }
  }
}

TEST(Fixed16, UnaryMinus) {
  EXPECT_DOUBLE_EQ((-Fix16::from_double(2.5)).to_double(), -2.5);
  // Negating the minimum saturates (two's complement asymmetry).
  EXPECT_EQ((-Fix16::min()).raw(), std::numeric_limits<std::int16_t>::max());
}

TEST(Fixed16, ComparisonOperators) {
  EXPECT_LT(Fix16::from_double(1.0), Fix16::from_double(2.0));
  EXPECT_EQ(Fix16::from_double(1.5), Fix16::from_double(1.5));
  EXPECT_GT(Fix16::from_double(-1.0), Fix16::from_double(-2.0));
}

TEST(Accumulator, WideAccumulationAvoidsIntermediateSaturation) {
  // Sum of 1000 products of 8 * 8 = 64000 overflows INT16 intermediates but
  // the wide accumulator holds it; the final narrow saturates.
  Acc16 acc;
  const auto eight = Fix16::from_double(8.0);
  for (int i = 0; i < 1000; ++i) acc.mac(eight, eight);
  EXPECT_EQ(acc.result().raw(), std::numeric_limits<std::int16_t>::max());
}

TEST(Accumulator, ExactDotProduct) {
  // Small dot product representable exactly in Q6.9.
  Acc16 acc;
  acc.mac(Fix16::from_double(0.5), Fix16::from_double(2.0));   // 1.0
  acc.mac(Fix16::from_double(1.5), Fix16::from_double(-2.0));  // -3.0
  acc.mac(Fix16::from_double(0.25), Fix16::from_double(4.0));  // 1.0
  EXPECT_DOUBLE_EQ(acc.result().to_double(), -1.0);
}

TEST(Accumulator, AddMergesLanes) {
  Acc16 a;
  Acc16 b;
  a.mac(Fix16::from_double(1.0), Fix16::from_double(2.0));
  b.mac(Fix16::from_double(3.0), Fix16::from_double(1.0));
  a.add(b);
  EXPECT_DOUBLE_EQ(a.result().to_double(), 5.0);
}

TEST(Accumulator, ClearResets) {
  Acc16 acc;
  acc.mac(Fix16::from_double(2.0), Fix16::from_double(2.0));
  acc.clear();
  EXPECT_DOUBLE_EQ(acc.result().to_double(), 0.0);
}

TEST(Fixed16, QuantizeHelperMatchesFixedRoundTrip) {
  for (double v = -8.0; v < 8.0; v += 0.0731) {
    EXPECT_DOUBLE_EQ(quantize(v), Fix16::from_double(v).to_double()) << v;
  }
}

// Property sweep: raw round trip is the identity for every INT16 value.
class RawRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RawRoundTrip, FromRawPreservesBits) {
  const auto raw = static_cast<std::int16_t>(GetParam());
  EXPECT_EQ(Fix16::from_raw(raw).raw(), raw);
  // to_double/from_double round trip is also exact for representable values.
  EXPECT_EQ(Fix16::from_double(Fix16::from_raw(raw).to_double()).raw(), raw);
}

INSTANTIATE_TEST_SUITE_P(AllBoundaryValues, RawRoundTrip,
                         ::testing::Values(-32768, -32767, -512, -1, 0, 1, 2, 255, 256,
                                           511, 512, 513, 32766, 32767));

// Different Q formats behave consistently.
template <typename T>
class QFormat : public ::testing::Test {};

using Formats = ::testing::Types<Fixed<6>, Fixed<8>, Fixed<9>, Fixed<12>>;
TYPED_TEST_SUITE(QFormat, Formats);

TYPED_TEST(QFormat, OneTimesXIsX) {
  const auto one = TypeParam::from_double(1.0);
  for (double v = -3.0; v <= 3.0; v += 0.37) {
    const auto x = TypeParam::from_double(v);
    EXPECT_EQ((one * x).raw(), x.raw()) << v;
  }
}

TYPED_TEST(QFormat, ResolutionMatchesFracBits) {
  EXPECT_DOUBLE_EQ(TypeParam::resolution(),
                   1.0 / static_cast<double>(1 << TypeParam::kFracBits));
}

}  // namespace
}  // namespace onesa::fixed
