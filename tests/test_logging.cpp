// Thread-safety stress test of the global logger: concurrent writers must
// never interleave partial lines (each sink write is one composed line under
// a single global mutex).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace onesa {
namespace {

/// Restores the default sink and level even if the test fails early.
struct SinkGuard {
  explicit SinkGuard(std::ostream* sink) {
    old_level = Logger::instance().level();
    Logger::instance().set_sink(sink);
  }
  ~SinkGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(old_level);
  }
  LogLevel old_level;
};

TEST(Logging, ConcurrentWritersNeverInterleaveLines) {
  std::ostringstream captured;
  SinkGuard guard(&captured);
  Logger::instance().set_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        ONESA_LOG_INFO << "thread " << t << " line " << i << " payload "
                       << std::string(32, 'a' + static_cast<char>(t));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every captured line must be exactly one writer's full message.
  std::istringstream in(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    ASSERT_EQ(line.rfind("[INFO] thread ", 0), 0u) << "torn line: " << line;
    const auto payload = line.find(" payload ");
    ASSERT_NE(payload, std::string::npos) << "torn line: " << line;
    const std::string tail = line.substr(payload + 9);
    ASSERT_EQ(tail.size(), 32u) << "torn line: " << line;
    for (char c : tail) ASSERT_EQ(c, tail[0]) << "interleaved payload: " << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(Logging, LevelFiltersBelowThreshold) {
  std::ostringstream captured;
  SinkGuard guard(&captured);
  Logger::instance().set_level(LogLevel::kWarn);
  ONESA_LOG_INFO << "hidden";
  ONESA_LOG_WARN << "visible";
  const std::string out = captured.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

}  // namespace
}  // namespace onesa
