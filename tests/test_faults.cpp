// Tests of the fault-injection + self-healing serve tier:
// serve/faults.hpp (deterministic injector, zero-cost when disarmed),
// serve/errors.hpp (typed errors with structured context), the worker
// watchdog (crash respawn + in-flight re-queue, stall abandonment), the
// bounded-join shutdown (a stalled worker cannot hang the destructor), and
// the fleet resilience layer (retries with backoff, hedged re-submits with
// first-completion dedup, per-request timeouts, the per-shard circuit
// breaker, and brownout degradation that sheds bulk traffic first).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serve/errors.hpp"
#include "serve/faults.hpp"
#include "serve/fleet.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_pool.hpp"
#include "tensor/ops.hpp"

namespace onesa::serve {
namespace {

using tensor::FixMatrix;
using tensor::to_fixed;

FixMatrix random_fix(std::size_t rows, std::size_t cols, Rng& rng, float lo = -2.0f,
                     float hi = 2.0f) {
  return to_fixed(tensor::random_uniform(rows, cols, rng, lo, hi));
}

OneSaConfig small_config() {
  OneSaConfig cfg;
  cfg.array.rows = 4;
  cfg.array.cols = 4;
  cfg.array.macs_per_pe = 4;
  cfg.mode = ExecutionMode::kAnalytic;
  return cfg;
}

ServerPoolConfig small_pool(std::size_t workers) {
  ServerPoolConfig cfg;
  cfg.workers = workers;
  cfg.accelerator = small_config();
  return cfg;
}

FleetConfig small_fleet(std::size_t shards, std::size_t workers) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.workers_per_shard = workers;
  cfg.accelerator = small_config();
  return cfg;
}

/// Spin until `pred` holds or `timeout_ms` passes; true if it held.
template <typename Pred>
bool wait_for(Pred pred, double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// FaultInjector mechanics
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisarmedDrawsNothing) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.draw_transient_error());
    EXPECT_FALSE(injector.draw_poisoned_batch());
    EXPECT_FALSE(injector.draw_crash());
    EXPECT_EQ(injector.draw_stall_ms(), 0.0);
  }
  EXPECT_EQ(injector.latency_multiplier(), 1.0);
  EXPECT_EQ(injector.transients_injected(), 0u);
}

TEST(FaultInjector, ArmingEmptyPlanIsDisarm) {
  FaultInjector injector;
  FaultPlan plan;
  plan.transient_error_rate = 0.5;
  injector.arm(plan);
  EXPECT_TRUE(injector.armed());
  injector.arm(FaultPlan{});  // nothing to inject => disarmed
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultPlan plan;
  plan.transient_error_rate = 0.3;
  plan.seed = 1234;
  FaultInjector a;
  FaultInjector b;
  a.arm(plan);
  b.arm(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.draw_transient_error(), b.draw_transient_error()) << "draw " << i;
  }
  // Re-arming resets the stream: the same prefix repeats.
  std::vector<bool> first;
  a.arm(plan);
  for (int i = 0; i < 50; ++i) first.push_back(a.draw_transient_error());
  a.arm(plan);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.draw_transient_error(), first[static_cast<std::size_t>(i)]);
}

TEST(FaultInjector, CrashBudgetIsConsumed) {
  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.max_crashes = 2;
  FaultInjector injector;
  injector.arm(plan);
  EXPECT_TRUE(injector.draw_crash());
  EXPECT_TRUE(injector.draw_crash());
  EXPECT_FALSE(injector.draw_crash());  // budget exhausted
  EXPECT_EQ(injector.crashes_injected(), 2u);
}

// ---------------------------------------------------------------------------
// Typed errors with structured context
// ---------------------------------------------------------------------------

TEST(FaultServing, TransientErrorsAreTypedAndCarryContext) {
  ServerPool pool(small_pool(1));
  FaultPlan plan;
  plan.transient_error_rate = 1.0;
  pool.fault_injector().arm(plan);

  Rng rng(7);
  auto future = pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  try {
    future.get();
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.kind(), InjectedFault::Kind::kTransient);
    EXPECT_NE(fault.context().worker, ErrorContext::kNone);
    EXPECT_NE(std::string(fault.what()).find("worker="), std::string::npos);
    // Transient injected faults are the retryable class.
    EXPECT_TRUE(is_retryable(std::make_exception_ptr(fault)));
  }
  EXPECT_GE(pool.fault_injector().transients_injected(), 1u);

  // Overloads are terminal, never retried.
  EXPECT_FALSE(is_retryable(std::make_exception_ptr(OverloadError("shed"))));
}

TEST(FaultServing, PoisonedBatchFailsEveryRequestInIt) {
  ServerPool pool(small_pool(1));
  FaultPlan plan;
  plan.poison_rate = 1.0;
  pool.fault_injector().arm(plan);

  Rng rng(8);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kGelu, random_fix(2, 4, rng)));
  }
  std::size_t poisoned = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const InjectedFault& fault) {
      EXPECT_EQ(fault.kind(), InjectedFault::Kind::kPoisonedBatch);
      ++poisoned;
    }
  }
  EXPECT_EQ(poisoned, futures.size());
}

TEST(FaultServing, FleetAdmissionShedCarriesBacklogContext) {
  FleetConfig cfg = small_fleet(1, 1);
  cfg.admission.max_pending_requests = 1;
  Fleet fleet(cfg);
  // Stall the worker so the backlog cannot drain between submits.
  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 60.0;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(9);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
  }
  std::size_t shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const OverloadError& overload) {
      EXPECT_GE(overload.context().queue_depth, 1u);
      EXPECT_NE(std::string(overload.what()).find("depth="), std::string::npos);
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(fleet.sheds(), shed);
}

// ---------------------------------------------------------------------------
// Watchdog: crash respawn + stall abandonment
// ---------------------------------------------------------------------------

TEST(FaultServing, WatchdogRespawnsCrashedWorkerAndRequeuesItsBatch) {
  ServerPoolConfig cfg = small_pool(1);
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval_ms = 2.0;
  ServerPool pool(cfg);

  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.max_crashes = 1;
  pool.fault_injector().arm(plan);

  Rng rng(10);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
  }
  // The crashed worker's in-flight batch is re-queued and served by the
  // respawned thread: every future completes with a value, exactly once.
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_GE(pool.worker_restarts(), 1u);
  EXPECT_GE(pool.fault_injector().crashes_injected(), 1u);
}

TEST(FaultServing, WatchdogAbandonsStalledWorker) {
  ServerPoolConfig cfg = small_pool(1);
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval_ms = 2.0;
  cfg.watchdog.stall_timeout_ms = 20.0;
  ServerPool pool(cfg);

  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 10000.0;  // far past the stall timeout
  pool.fault_injector().arm(plan);

  Rng rng(11);
  auto future = pool.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  ASSERT_TRUE(wait_for([&] { return pool.stalls_detected() >= 1; }, 5000.0));
  // Disarm so the respawned worker serves the recovered batch cleanly.
  pool.fault_injector().disarm();
  EXPECT_NO_THROW(future.get());
  EXPECT_GE(pool.worker_restarts(), 1u);
}

// ---------------------------------------------------------------------------
// Bounded-join shutdown (satellite: stalled worker cannot hang shutdown)
// ---------------------------------------------------------------------------

TEST(FaultServing, ShutdownIsBoundedWhenAWorkerStalls) {
  ServerPoolConfig cfg = small_pool(1);
  cfg.join_timeout_ms = 100.0;  // no watchdog: nobody rescues the stall
  auto pool = std::make_unique<ServerPool>(cfg);

  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 20000.0;
  pool->fault_injector().arm(plan);

  Rng rng(12);
  auto future = pool->submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  // Give the worker time to pick the batch up and enter the stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const auto started = std::chrono::steady_clock::now();
  pool->shutdown();
  const double shutdown_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();
  // Bounded: the join gave up after ~join_timeout_ms instead of 20 s.
  EXPECT_LT(shutdown_ms, 5000.0);
  EXPECT_GE(pool->forced_detaches(), 1u);
  // The detached zombie saw the hurry flag, cut its injected sleep short,
  // and still completed its future — no request is ever lost.
  EXPECT_NO_THROW(future.get());
  pool.reset();
}

// ---------------------------------------------------------------------------
// Fleet resilience: retries, hedging, timeouts
// ---------------------------------------------------------------------------

TEST(FaultFleet, RetriesAbsorbTransientFaults) {
  FleetConfig cfg = small_fleet(1, 1);
  cfg.resilience.max_retries = 12;
  cfg.resilience.retry_backoff_ms = 0.2;
  Fleet fleet(cfg);

  FaultPlan plan;
  plan.transient_error_rate = 0.5;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(13);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
  }
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_GE(fleet.retries(), 1u);
}

TEST(FaultFleet, RetryBudgetExhaustionSurfacesTheFault) {
  FleetConfig cfg = small_fleet(1, 1);
  cfg.resilience.max_retries = 2;
  cfg.resilience.retry_backoff_ms = 0.2;
  Fleet fleet(cfg);

  FaultPlan plan;
  plan.transient_error_rate = 1.0;  // nothing ever succeeds
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(14);
  auto future = fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  EXPECT_THROW(future.get(), InjectedFault);
  EXPECT_GE(fleet.retries(), 2u);
}

TEST(FaultFleet, HedgingDuplicatesToAnotherShardAndDedupsResults) {
  FleetConfig cfg = small_fleet(2, 1);
  cfg.resilience.hedge_after_ms = 5.0;
  cfg.resilience.max_hedges = 1;
  Fleet fleet(cfg);

  // Shard 0 is pathologically slow; shard 1 is healthy. Hedged duplicates
  // land on the other shard and win; the stalled originals finish later and
  // are dropped by first-completion dedup.
  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 80.0;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(15);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
  }
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_GE(fleet.hedges(), 1u);
}

TEST(FaultFleet, TimeoutSettlesTheFutureTyped) {
  FleetConfig cfg = small_fleet(1, 1);
  cfg.resilience.request_timeout_ms = 15.0;
  Fleet fleet(cfg);

  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 300.0;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(16);
  auto future = fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng));
  EXPECT_THROW(future.get(), TimeoutError);
  EXPECT_GE(fleet.timeouts(), 1u);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(FaultFleet, BreakerOpensOnErrorsAndReclosesAfterRecovery) {
  FleetConfig cfg = small_fleet(2, 1);
  cfg.breaker.enabled = true;
  cfg.breaker.min_samples = 4;
  cfg.breaker.ewma_alpha = 0.5;
  cfg.breaker.error_threshold = 0.5;
  cfg.breaker.open_cooldown_ms = 15.0;
  cfg.breaker.half_open_probes = 2;
  cfg.resilience.max_retries = 6;
  cfg.resilience.retry_backoff_ms = 0.2;
  Fleet fleet(cfg);

  FaultPlan plan;
  plan.transient_error_rate = 1.0;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(17);
  std::vector<std::future<ServeResult>> futures;
  // Push traffic until shard 0's breaker trips. Retries re-route to the
  // healthy shard, so every future still succeeds.
  ASSERT_TRUE(wait_for(
      [&] {
        futures.push_back(
            fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
        return fleet.health(0).opens() >= 1;
      },
      10000.0));
  EXPECT_GE(fleet.health(0).opens(), 1u);

  // Heal the shard; keep a trickle flowing so half-open probes can run. The
  // breaker walks open -> half-open -> closed.
  fleet.shard(0).fault_injector().disarm();
  ASSERT_TRUE(wait_for(
      [&] {
        futures.push_back(
            fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng)));
        return fleet.health(0).state() == ShardHealth::Breaker::kClosed;
      },
      10000.0));
  EXPECT_EQ(fleet.health(0).state(), ShardHealth::Breaker::kClosed);

  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

// ---------------------------------------------------------------------------
// Brownout degradation
// ---------------------------------------------------------------------------

TEST(FaultFleet, BrownoutShedsBulkFirstAndKeepsInteractiveFlowing) {
  FleetConfig cfg = small_fleet(1, 1);
  cfg.admission.max_pending_requests = 64;  // cap far away: admission stays open
  cfg.brownout.enabled = true;
  cfg.brownout.backlog_fraction = 0.05;  // pressure at ~3 pending
  cfg.brownout.enter_ticks = 1;
  cfg.brownout.exit_ticks = 1000000;  // pin the brownout on once entered
  Fleet fleet(cfg);

  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 40.0;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(18);
  std::vector<std::future<ServeResult>> accepted;
  // Alternate function kinds so the requests cannot merge into one batch —
  // the backlog stays deep while the worker crawls through injected stalls.
  const cpwl::FunctionKind kinds[] = {cpwl::FunctionKind::kRelu, cpwl::FunctionKind::kGelu,
                                      cpwl::FunctionKind::kSigmoid};
  ASSERT_TRUE(wait_for(
      [&] {
        accepted.push_back(fleet.submit_elementwise(kinds[accepted.size() % 3],
                                                    random_fix(2, 4, rng)));
        return fleet.browned_out();
      },
      10000.0));

  // Degraded: bulk is shed with a typed overload, interactive still admits.
  SubmitOptions bulk;
  bulk.priority = Priority::kBulk;
  auto shed = fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng), bulk);
  EXPECT_THROW(shed.get(), OverloadError);
  EXPECT_GE(fleet.brownout_sheds(), 1u);

  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;
  accepted.push_back(
      fleet.submit_elementwise(cpwl::FunctionKind::kRelu, random_fix(2, 4, rng), interactive));

  fleet.shard(0).fault_injector().disarm();
  for (auto& f : accepted) EXPECT_NO_THROW(f.get());
}

// ---------------------------------------------------------------------------
// Scheduling under faults (satellite: eviction + deadline misses; retry
// storms must not starve interactive)
// ---------------------------------------------------------------------------

TEST(FaultServing, DropOldestEvictionAndDeadlineMissesUnderStalls) {
  ServerPoolConfig cfg = small_pool(1);
  cfg.admission.max_pending_requests = 3;
  cfg.admission.policy = OverloadPolicy::kDropOldest;
  ServerPool pool(cfg);

  FaultPlan plan;
  plan.stall_rate = 1.0;
  plan.stall_ms = 25.0;
  pool.fault_injector().arm(plan);

  Rng rng(19);
  const cpwl::FunctionKind kinds[] = {cpwl::FunctionKind::kRelu, cpwl::FunctionKind::kGelu,
                                      cpwl::FunctionKind::kSigmoid};
  SubmitOptions tight;
  tight.deadline_ms = 1.0;  // everything the stall touches misses this
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(pool.submit_elementwise(kinds[static_cast<std::size_t>(i) % 3],
                                              random_fix(2, 4, rng), tight));
  }
  std::size_t evicted = 0;
  std::size_t completed = 0;
  std::size_t missed = 0;
  for (auto& f : futures) {
    try {
      ServeResult result = f.get();
      ++completed;
      if (result.deadline_missed) ++missed;
    } catch (const OverloadError&) {
      ++evicted;
    }
  }
  // Drop-oldest under a stalled worker: the burst overflows the 3-deep
  // backlog, older victims are evicted typed, and the survivors complete —
  // late, so they count as deadline misses.
  EXPECT_EQ(evicted + completed, futures.size());
  EXPECT_GE(evicted, 1u);
  EXPECT_GE(completed, 1u);
  EXPECT_GE(missed, 1u);
  pool.shutdown();
  EXPECT_EQ(pool.stats().sheds(), evicted);
  EXPECT_GE(pool.stats().deadline_misses(), missed);
}

TEST(FaultFleet, RetryStormDoesNotStarveInteractive) {
  FleetConfig cfg = small_fleet(1, 1);
  cfg.resilience.max_retries = 8;
  cfg.resilience.retry_backoff_ms = 0.2;
  Fleet fleet(cfg);

  FaultPlan plan;
  plan.transient_error_rate = 0.4;
  fleet.shard(0).fault_injector().arm(plan);

  Rng rng(20);
  std::vector<std::future<ServeResult>> futures;
  // One saturating burst: bulk first so the queue is deep when the
  // interactive requests arrive — strict priority must jump them ahead even
  // while the transient-fault retry storm churns the queue.
  SubmitOptions bulk;
  bulk.priority = Priority::kBulk;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(
        fleet.submit_elementwise(cpwl::FunctionKind::kGelu, random_fix(2, 4, rng), bulk));
  }
  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(fleet.submit_elementwise(cpwl::FunctionKind::kRelu,
                                               random_fix(2, 4, rng), interactive));
  }
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  const ServeStats stats = fleet.stats();
  ASSERT_GE(stats.class_completed(Priority::kInteractive), 8u);
  ASSERT_GE(stats.class_completed(Priority::kBulk), 24u);
  // Interactive p99 stays at or below bulk p99: the priority queue holds
  // its ordering even under the retry storm.
  EXPECT_LE(stats.class_percentile_latency_ms(Priority::kInteractive, 99.0),
            stats.class_percentile_latency_ms(Priority::kBulk, 99.0));
}

}  // namespace
}  // namespace onesa::serve
