// Tests for the im2col/col2im convolution lowering.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace onesa::tensor {
namespace {

/// Naive direct convolution used as the golden model.
Matrix naive_conv(const Matrix& image_row, const Matrix& weight, const ConvShape& s,
                  std::size_t out_channels) {
  const std::size_t oh = s.out_height();
  const std::size_t ow = s.out_width();
  Matrix out(1, out_channels * oh * ow, 0.0);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::size_t c = 0; c < s.in_channels; ++c) {
          for (std::size_t ky = 0; ky < s.kernel; ++ky) {
            for (std::size_t kx = 0; kx < s.kernel; ++kx) {
              const auto y = static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
                             static_cast<std::ptrdiff_t>(s.padding);
              const auto x = static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                             static_cast<std::ptrdiff_t>(s.padding);
              if (y < 0 || x < 0 || y >= static_cast<std::ptrdiff_t>(s.in_height) ||
                  x >= static_cast<std::ptrdiff_t>(s.in_width)) {
                continue;
              }
              const double pixel =
                  image_row(0, (c * s.in_height + static_cast<std::size_t>(y)) *
                                       s.in_width +
                                   static_cast<std::size_t>(x));
              const double w =
                  weight((c * s.kernel + ky) * s.kernel + kx, oc);
              acc += pixel * w;
            }
          }
        }
        out(0, oc * oh * ow + oy * ow + ox) = acc;
      }
    }
  }
  return out;
}

TEST(ConvShape, OutputDims) {
  ConvShape s{3, 8, 8, 3, 1, 1};
  EXPECT_EQ(s.out_height(), 8u);
  EXPECT_EQ(s.out_width(), 8u);
  EXPECT_EQ(s.patch_cols(), 27u);
  ConvShape strided{1, 8, 8, 2, 2, 0};
  EXPECT_EQ(strided.out_height(), 4u);
}

TEST(ConvShape, KernelTooLargeThrows) {
  ConvShape s{1, 2, 2, 5, 1, 0};
  EXPECT_THROW(s.out_height(), Error);
}

TEST(Im2col, PatchContentNoPadding) {
  // 1-channel 3x3 image, 2x2 kernel -> 4 patches of 4 taps.
  Matrix img{{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0}};
  ConvShape s{1, 3, 3, 2, 1, 0};
  const Matrix p = im2col(img, s);
  EXPECT_EQ(p.rows(), 4u);
  EXPECT_EQ(p.cols(), 4u);
  // First patch: rows (1,2),(4,5).
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(p(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(p(0, 3), 5.0);
  // Last patch: rows (5,6),(8,9).
  EXPECT_DOUBLE_EQ(p(3, 3), 9.0);
}

TEST(Im2col, PaddingReadsZero) {
  Matrix img{{1.0, 2.0, 3.0, 4.0}};
  ConvShape s{1, 2, 2, 3, 1, 1};
  const Matrix p = im2col(img, s);
  EXPECT_EQ(p.rows(), 4u);
  // Top-left patch's first tap is fully in padding.
  EXPECT_DOUBLE_EQ(p(0, 0), 0.0);
  // Center tap of first patch = pixel (0,0).
  EXPECT_DOUBLE_EQ(p(0, 4), 1.0);
}

struct ConvCase {
  ConvShape shape;
  std::size_t out_channels;
};

class ConvViaGemm : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvViaGemm, MatchesNaiveConvolution) {
  const auto& [shape, out_channels] = GetParam();
  Rng rng(shape.in_channels * 10 + shape.kernel);
  const Matrix img =
      random_uniform(1, shape.in_channels * shape.in_height * shape.in_width, rng);
  const Matrix w = random_uniform(shape.patch_cols(), out_channels, rng);
  const Matrix bias(1, out_channels, 0.0);
  const Matrix via_gemm = conv2d_via_gemm(img, w, bias, shape);
  const Matrix naive = naive_conv(img, w, shape, out_channels);
  EXPECT_LT(max_abs_distance(via_gemm, naive), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvViaGemm,
    ::testing::Values(ConvCase{{1, 4, 4, 3, 1, 1}, 2},   // same-size conv
                      ConvCase{{3, 6, 6, 3, 1, 1}, 4},   // multi-channel
                      ConvCase{{2, 8, 8, 3, 2, 1}, 3},   // strided
                      ConvCase{{1, 5, 5, 1, 1, 0}, 2},   // 1x1 conv
                      ConvCase{{4, 7, 7, 7, 1, 3}, 2})); // big kernel

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property of
  // the adjoint, which is exactly what conv backward needs.
  ConvShape s{2, 5, 5, 3, 1, 1};
  Rng rng(42);
  const Matrix x = random_normal(1, s.in_channels * s.in_height * s.in_width, rng);
  const Matrix y = random_normal(s.patch_rows(), s.patch_cols(), rng);
  const Matrix ix = im2col(x, s);
  const Matrix cy = col2im(y, s);
  double lhs = 0.0;
  for (std::size_t i = 0; i < ix.size(); ++i) lhs += ix.at_flat(i) * y.at_flat(i);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x.at_flat(i) * cy.at_flat(i);
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(Conv2dViaGemm, BiasApplied) {
  ConvShape s{1, 3, 3, 3, 1, 1};
  const Matrix img(1, 9, 0.0);
  const Matrix w(9, 2, 0.0);
  Matrix bias{{1.5, -2.5}};
  const Matrix out = conv2d_via_gemm(img, w, bias, s);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.5);        // channel 0
  EXPECT_DOUBLE_EQ(out(0, 9), -2.5);       // channel 1 starts at oh*ow = 9
}

TEST(Conv2dViaGemm, BatchRowsIndependent) {
  ConvShape s{1, 4, 4, 3, 1, 1};
  Rng rng(5);
  const Matrix batch = random_uniform(3, 16, rng);
  const Matrix w = random_uniform(9, 2, rng);
  const Matrix bias(1, 2, 0.0);
  const Matrix all = conv2d_via_gemm(batch, w, bias, s);
  for (std::size_t n = 0; n < 3; ++n) {
    Matrix row(1, 16);
    for (std::size_t j = 0; j < 16; ++j) row(0, j) = batch(n, j);
    const Matrix single = conv2d_via_gemm(row, w, bias, s);
    for (std::size_t j = 0; j < single.cols(); ++j) {
      EXPECT_DOUBLE_EQ(all(n, j), single(0, j));
    }
  }
}

}  // namespace
}  // namespace onesa::tensor
