// Tests for the cycle-accurate systolic array simulator: functional
// equivalence against the reference INT16 ops and dataflow invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/array.hpp"
#include "tensor/ops.hpp"

namespace onesa::sim {
namespace {

using tensor::FixMatrix;
using tensor::Matrix;
using tensor::to_fixed;

ArrayConfig small_config(std::size_t rows, std::size_t cols, std::size_t macs) {
  ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.macs_per_pe = macs;
  return cfg;
}

TEST(ArrayConfig, ValidationRejectsBadConfigs) {
  EXPECT_THROW(small_config(0, 4, 4).validate(), ConfigError);
  EXPECT_THROW(small_config(4, 4, 0).validate(), ConfigError);
  EXPECT_THROW(small_config(4, 4, 3).validate(), ConfigError);  // odd MACs
  EXPECT_NO_THROW(small_config(4, 4, 4).validate());
}

TEST(ArrayConfig, OutPortAutoScaling) {
  // out_port_elems == 0 means "auto": max(32, diagonal * macs/2).
  ArrayConfig small = small_config(4, 4, 4);
  EXPECT_EQ(small.resolved_out_port_elems(), 32u);
  ArrayConfig large = small_config(16, 16, 32);
  EXPECT_EQ(large.resolved_out_port_elems(), 256u);
  ArrayConfig pinned = small_config(16, 16, 32);
  pinned.out_port_elems = 8;
  EXPECT_EQ(pinned.resolved_out_port_elems(), 8u);
}

TEST(ArrayConfig, DerivedQuantities) {
  const ArrayConfig cfg = small_config(4, 8, 16);
  EXPECT_EQ(cfg.pe_count(), 32u);
  EXPECT_EQ(cfg.diagonal(), 4u);
  EXPECT_EQ(cfg.peak_macs_per_cycle(), 512u);
}

struct GemmCase {
  std::size_t rows, cols, macs;  // array geometry
  std::size_t m, k, n;           // problem shape
};

class GemmEquivalence : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmEquivalence, MatchesReferenceFixedGemm) {
  const auto& p = GetParam();
  SystolicArraySim sim(small_config(p.rows, p.cols, p.macs));
  Rng rng(p.m * 7 + p.k * 3 + p.n);
  const FixMatrix a = to_fixed(tensor::random_uniform(p.m, p.k, rng, -1.0, 1.0));
  const FixMatrix b = to_fixed(tensor::random_uniform(p.k, p.n, rng, -1.0, 1.0));
  const auto [c, cycles] = sim.gemm(a, b);
  const FixMatrix want = tensor::matmul(a, b);
  ASSERT_EQ(c.rows(), want.rows());
  ASSERT_EQ(c.cols(), want.cols());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.at_flat(i).raw(), want.at_flat(i).raw()) << "element " << i;
  }
  EXPECT_GT(cycles.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndGeometries, GemmEquivalence,
    ::testing::Values(GemmCase{2, 2, 2, 2, 2, 2},      // exact fit
                      GemmCase{2, 2, 2, 4, 4, 4},      // multiple tiles
                      GemmCase{4, 4, 2, 3, 5, 3},      // edge tiles
                      GemmCase{4, 4, 4, 9, 7, 10},     // ragged everything
                      GemmCase{2, 4, 2, 5, 6, 5},      // non-square array
                      GemmCase{4, 2, 4, 6, 3, 7},      // tall array
                      GemmCase{8, 8, 16, 16, 32, 16},  // reference-like
                      GemmCase{4, 4, 8, 1, 1, 1},      // degenerate problem
                      GemmCase{2, 2, 2, 1, 16, 1}));   // long reduction

struct MhpCase {
  std::size_t rows, cols, macs;
  std::size_t m, n;
};

class MhpEquivalence : public ::testing::TestWithParam<MhpCase> {};

TEST_P(MhpEquivalence, MatchesReferenceMhpAffine) {
  const auto& p = GetParam();
  SystolicArraySim sim(small_config(p.rows, p.cols, p.macs));
  Rng rng(p.m * 31 + p.n);
  const FixMatrix x = to_fixed(tensor::random_uniform(p.m, p.n, rng, -4.0, 4.0));
  const FixMatrix k = to_fixed(tensor::random_uniform(p.m, p.n, rng, -2.0, 2.0));
  const FixMatrix b = to_fixed(tensor::random_uniform(p.m, p.n, rng, -2.0, 2.0));
  const auto [y, cycles] = sim.mhp(x, k, b);
  const FixMatrix want = tensor::mhp_affine(x, k, b);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y.at_flat(i).raw(), want.at_flat(i).raw()) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndGeometries, MhpEquivalence,
    ::testing::Values(MhpCase{2, 2, 2, 2, 2},     // one element per PE cycle
                      MhpCase{4, 4, 4, 8, 8},     // even split
                      MhpCase{4, 4, 4, 3, 5},     // uneven chunks
                      MhpCase{2, 4, 2, 7, 3},     // rectangular array
                      MhpCase{8, 8, 16, 16, 16},  // reference-like
                      MhpCase{4, 4, 2, 1, 1},     // single element
                      MhpCase{3, 3, 4, 10, 10})); // odd diagonal

TEST(ArraySim, OnlyDiagonalPesComputeDuringMhp) {
  ArrayConfig cfg = small_config(4, 4, 4);
  SystolicArraySim sim(cfg);
  Rng rng(99);
  const FixMatrix x = to_fixed(tensor::random_uniform(8, 8, rng));
  const FixMatrix k = to_fixed(tensor::random_uniform(8, 8, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(8, 8, rng));
  const std::uint64_t before = sim.total_mac_ops();
  sim.mhp(x, k, b);
  // Exactly 2 MAC ops per element, nothing from transmission PEs.
  EXPECT_EQ(sim.total_mac_ops() - before, 2u * 64u);
}

TEST(ArraySim, GemmMacCountMatchesProblem) {
  SystolicArraySim sim(small_config(4, 4, 4));
  Rng rng(1);
  const FixMatrix a = to_fixed(tensor::random_uniform(4, 8, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(8, 4, rng));
  sim.gemm(a, b);
  EXPECT_EQ(sim.total_mac_ops(), 4u * 8u * 4u);
}

TEST(ArraySim, CycleBreakdownPhasesPopulated) {
  SystolicArraySim sim(small_config(4, 4, 4));
  Rng rng(2);
  const FixMatrix a = to_fixed(tensor::random_uniform(8, 16, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(16, 8, rng));
  const auto [c, cycles] = sim.gemm(a, b);
  EXPECT_GT(cycles.fill_cycles, 0u);
  EXPECT_GT(cycles.compute_cycles, 0u);
  EXPECT_GT(cycles.drain_cycles, 0u);
  EXPECT_GT(cycles.memory_cycles, 0u);
  EXPECT_EQ(cycles.ipf_cycles, 0u);  // linear pass has no IPF
}

TEST(ArraySim, ShapeMismatchThrows) {
  SystolicArraySim sim(small_config(2, 2, 2));
  EXPECT_THROW(sim.gemm(FixMatrix(2, 3), FixMatrix(2, 3)), ShapeError);
  EXPECT_THROW(sim.mhp(FixMatrix(2, 2), FixMatrix(2, 3), FixMatrix(2, 2)), ShapeError);
}

TEST(ArraySim, RepeatedUseIsClean) {
  // State from a GEMM must not leak into a following MHP and vice versa.
  SystolicArraySim sim(small_config(2, 2, 2));
  Rng rng(3);
  const FixMatrix a = to_fixed(tensor::random_uniform(2, 4, rng));
  const FixMatrix b = to_fixed(tensor::random_uniform(4, 2, rng));
  const auto first = sim.gemm(a, b);
  const FixMatrix x = to_fixed(tensor::random_uniform(3, 3, rng));
  const FixMatrix k = to_fixed(tensor::random_uniform(3, 3, rng));
  const FixMatrix bb = to_fixed(tensor::random_uniform(3, 3, rng));
  const auto mhp = sim.mhp(x, k, bb);
  EXPECT_EQ(mhp.output, tensor::mhp_affine(x, k, bb));
  const auto second = sim.gemm(a, b);
  EXPECT_EQ(first.output, second.output);
  EXPECT_EQ(first.cycles.total(), second.cycles.total());
}

}  // namespace
}  // namespace onesa::sim
